"""The query planner: search over candidate plans (§4.4, §4.6, §7.3).

The planner explores the choice tree produced by ``expand.choice_space``
depth-first, scoring partial assignments as it goes. Two heuristics keep
the search tractable (§4.4):

* **branch-and-bound** — a prefix is scored by instantiating only the ops
  chosen so far; since costs only grow as ops are added, a prefix that
  already violates a constraint or exceeds the best-known goal value can
  be discarded with its whole subtree;
* **constraint pruning** — partial solutions are discarded as soon as they
  exceed one of the analyst's limits.

Setting ``heuristics=False`` reproduces the §7.3 ablation: the planner
enumerates every full candidate, keeps them all in memory like a naive
implementation, and aborts with :class:`PlannerOutOfMemory` once the
candidate list exceeds the memory budget (the paper's planner ran out of
memory for half the queries with heuristics disabled).

Two search engines share one control loop (`_SearchRun`), so they visit
nodes in the same order and produce identical statistics by construction:

* ``engine="incremental"`` (default) — each search node extends its
  parent's :class:`~.expand.PrefixExpander` state by one op's vignettes
  and its running :class:`~.plan.ScoreAccumulator` by the new segment,
  so per-node work is O(1) amortized instead of O(depth). Emissions and
  per-Work cost-model evaluations are memoized (hit/miss counters land
  in :class:`PlannerStatistics`).
* ``engine="reference"`` — the original from-scratch search (partial
  re-instantiation + full rescoring per node), retained as the oracle
  for the equivalence suite and the baseline for the planner benchmark.

With ``order_choices`` (default on when heuristics are on), surviving
children at each node are visited cheapest-first by their partial goal
value — an admissible lower bound on any completion, since costs only
grow as ops are added — so the incumbent tightens early and more of the
tree falls to the bound. ``workers=N`` additionally fans the top-level
choice subtrees across a ``multiprocessing`` fork pool; per-worker
incumbents are merged deterministically in subtree order.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.types import QueryEnvironment
from ..lang.ast import Program
from ..lang.parser import parse
from ..lang.simplify import simplify
from ..privacy.certify import Certificate, certify
from .costmodel import Constraints, CostModel, Goal
from .expand import (
    Choice,
    ExpansionError,
    PrefixExpander,
    choice_space,
    instantiate,
    space_size,
)
from .ir import LogicalPlan, lower
from .plan import Plan, score_vignettes


class PlanningFailed(Exception):
    """Raised when no candidate satisfies the analyst's constraints."""


class PlannerOutOfMemory(Exception):
    """Raised by the no-heuristics ablation when the candidate list blows up."""


@dataclass
class PlannerStatistics:
    """Search effort counters (Fig 9 reports runtime; §7.3 reports prefixes)."""

    space_size: int = 0
    prefixes_considered: int = 0
    candidates_scored: int = 0
    candidates_feasible: int = 0
    pruned_by_constraint: int = 0
    pruned_by_bound: int = 0
    runtime_seconds: float = 0.0
    #: Memoized cost-model evaluations (CostModel.cached_costs).
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    #: Memoized per-(op, choice, entry-state) vignette emissions.
    expansion_cache_hits: int = 0
    expansion_cache_misses: int = 0
    #: Nodes whose surviving children were visited in a different
    #: (cheapest-first) order than the catalog order.
    nodes_reordered: int = 0
    #: Worker processes the search actually used.
    workers: int = 1

    def merge_counters(self, other: "PlannerStatistics") -> None:
        """Accumulate another run's effort counters (not space/runtime)."""
        self.prefixes_considered += other.prefixes_considered
        self.candidates_scored += other.candidates_scored
        self.candidates_feasible += other.candidates_feasible
        self.pruned_by_constraint += other.pruned_by_constraint
        self.pruned_by_bound += other.pruned_by_bound
        self.cost_cache_hits += other.cost_cache_hits
        self.cost_cache_misses += other.cost_cache_misses
        self.expansion_cache_hits += other.expansion_cache_hits
        self.expansion_cache_misses += other.expansion_cache_misses
        self.nodes_reordered += other.nodes_reordered


@dataclass
class PlanningResult:
    """The chosen plan plus search statistics.

    ``privacy_certificate`` is the dataflow analyzer's machine-checkable
    proof summary (:class:`repro.verify.certificate.PrivacyCertificate`),
    attached by :meth:`Planner.plan_logical` when the analysis is clean;
    the executor re-analyzes and compares digests before running.
    """

    plan: Optional[Plan]
    statistics: PlannerStatistics
    certificate: Certificate
    logical_plan: LogicalPlan
    privacy_certificate: Optional[object] = None

    @property
    def succeeded(self) -> bool:
        return self.plan is not None


# --------------------------------------------------------------------------
# Search-node evaluators (the engine-specific part of the search)
# --------------------------------------------------------------------------


class _RefNode:
    """Reference-engine search node: just the prefix and its partial cost."""

    __slots__ = ("choices", "cost")

    def __init__(self, choices: Tuple[Choice, ...], cost):
        self.choices = choices
        self.cost = cost


class _ReferenceEvaluator:
    """From-scratch evaluation, byte-for-byte the original planner.

    Every extension re-instantiates and re-scores the whole prefix, and
    every leaf re-instantiates the full assignment (the seed planner's
    behaviour, kept as the benchmark baseline and equivalence oracle).
    """

    engine = "reference"
    cache_hits = 0
    cache_misses = 0

    def __init__(self, logical: LogicalPlan, model: CostModel, num_participants: int):
        self.logical = logical
        self.model = model
        self.n = num_participants

    def root(self) -> _RefNode:
        return _RefNode((), None)

    def extend(self, node: _RefNode, choice: Choice) -> _RefNode:
        choices = node.choices + (choice,)
        vignettes, _scheme = instantiate(
            self.logical, choices, self.model, partial=True
        )
        score = score_vignettes(vignettes, self.n, self.model)
        return _RefNode(choices, score.cost)

    def naive_extend(self, node: _RefNode, choice: Choice) -> _RefNode:
        # Without heuristics the original planner never instantiates
        # prefixes; structural failures only surface at the leaves.
        return _RefNode(node.choices + (choice,), None)

    def leaf(self, node: _RefNode):
        try:
            vignettes, scheme = instantiate(self.logical, node.choices, self.model)
        except ExpansionError:
            return None
        score = score_vignettes(vignettes, self.n, self.model)
        logical = self.logical
        choices = node.choices

        def make_plan() -> Plan:
            return Plan(
                query_name=logical.query_name,
                choices={c.key: c.label() for c in choices},
                vignettes=vignettes,
                scheme=scheme,
                score=score,
                choice_list=list(choices),
            )

        return score.cost, make_plan


class _IncrementalEvaluator:
    """Resumable evaluation through a :class:`PrefixExpander`.

    Extension reuses the parent node's vignettes and running score; the
    leaf reuses the depth-d node outright (it already folded every
    vignette), fixing the original planner's double instantiation of full
    assignments.
    """

    engine = "incremental"

    def __init__(self, logical: LogicalPlan, model: CostModel, num_participants: int):
        self.logical = logical
        self.model = model
        self.n = num_participants
        self.expander = PrefixExpander(logical, model)

    @property
    def cache_hits(self) -> int:
        return self.expander.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.expander.cache_misses

    def root(self):
        return self.expander.root()

    def extend(self, node, choice: Choice):
        return self.expander.extend(node, choice)

    # Structural failures surface at extension time; the search core
    # accounts for the skipped subtree's leaves in naive mode.
    naive_extend = extend

    def leaf(self, node):
        score = self.expander.leaf_score(node)
        expander = self.expander
        logical = self.logical

        def make_plan() -> Plan:
            return Plan(
                query_name=logical.query_name,
                choices={c.key: c.label() for c in node.choices},
                vignettes=expander.leaf_vignettes(node),
                scheme=node.scheme,
                score=score,
                choice_list=list(node.choices),
            )

        return score.cost, make_plan


# --------------------------------------------------------------------------
# The engine-independent search loop
# --------------------------------------------------------------------------


class _SearchRun:
    """One depth-first search over (a subset of) the choice tree.

    The control flow is shared by both evaluators, so node visit order,
    pruning decisions, and every statistics counter are identical between
    engines by construction (the bound checks compare the same partial
    CostVectors, which the incremental engine reproduces bit-exactly).
    """

    def __init__(
        self,
        planner: "Planner",
        logical: LogicalPlan,
        space,
        evaluator,
        stats,
        split_depth: int = 0,
    ):
        self.planner = planner
        self.logical = logical
        self.space = space
        self.evaluator = evaluator
        self.stats = stats
        self.split_depth = split_depth
        self.best: Optional[Plan] = None
        self.best_score = float("inf")
        self.best_composite = float("inf")
        self.kept_candidates: List[Plan] = []  # only populated without heuristics
        # suffix_leaves[d]: leaves in a subtree rooted at depth d, and
        # suffix_prefixes[d]: prefixes a full walk of that subtree visits.
        # Used to account for structurally-invalid subtrees in naive mode,
        # where the original planner walked and scored-and-failed them all.
        leaves = [1] * (len(space) + 1)
        prefixes = [0] * (len(space) + 1)
        for i in range(len(space) - 1, -1, -1):
            leaves[i] = leaves[i + 1] * len(space[i][1])
            prefixes[i] = len(space[i][1]) * (1 + prefixes[i + 1])
        self.suffix_leaves = leaves
        self.suffix_prefixes = prefixes

    def run(self, root_options: Optional[Sequence[int]] = None) -> Optional[Plan]:
        self.root_options = root_options
        root = self.evaluator.root()
        if self.planner.heuristics:
            self._dfs(root, 0)
        else:
            self._dfs_naive(root, 0)
        return self.best

    # ----------------------------------------------------------- internals

    def _options(self, depth: int):
        options = self.space[depth][1]
        if depth == self.split_depth and self.root_options is not None:
            allowed = set(self.root_options)
            return [(i, c) for i, c in enumerate(options) if i in allowed]
        return list(enumerate(options))

    def _leaf(self, node) -> Optional[Plan]:
        stats = self.stats
        planner = self.planner
        stats.candidates_scored += 1
        scored = self.evaluator.leaf(node)
        if scored is None:
            return None
        cost, make_plan = scored
        if not planner.constraints.allows(cost):
            stats.pruned_by_constraint += 1
            return None
        stats.candidates_feasible += 1
        plan = make_plan()
        if planner.goal.better(cost, self.best_score, self.best_composite):
            self.best = plan
            self.best_score = planner.goal.score(cost)
            self.best_composite = planner.goal.composite(cost)
        return plan

    def _dfs(self, node, depth: int) -> None:
        if depth == len(self.space):
            self._leaf(node)
            return
        stats = self.stats
        planner = self.planner
        goal = planner.goal
        # Two phases: score every child against the incumbent-at-entry,
        # then recurse (optionally cheapest-first), re-checking the bound
        # against the freshly tightened incumbent before each descent. A
        # child is counted as bound-pruned exactly once, whichever phase
        # discards it, so the totals match a single-phase loop.
        children = []
        for index, choice in self._options(depth):
            stats.prefixes_considered += 1
            try:
                child = self.evaluator.extend(node, choice)
            except ExpansionError:
                continue
            cost = child.cost
            if planner.constraints.first_violation(cost) is not None:
                stats.pruned_by_constraint += 1
                continue
            value = goal.score(cost)
            # Strict bound: costs only grow as ops are added, so a
            # prefix already *strictly* above the incumbent cannot
            # improve it; ties stay open for the lexicographic
            # composite to decide at the leaves.
            if value > self.best_score and not goal.is_tied(value, self.best_score):
                stats.pruned_by_bound += 1
                continue
            children.append((value, index, child))
        if planner.order_choices and len(children) > 1:
            ordered = sorted(children, key=lambda entry: (entry[0], entry[1]))
            if [entry[1] for entry in ordered] != [entry[1] for entry in children]:
                stats.nodes_reordered += 1
            children = ordered
        for value, _index, child in children:
            if value > self.best_score and not goal.is_tied(value, self.best_score):
                stats.pruned_by_bound += 1
                continue
            self._dfs(child, depth + 1)

    def _dfs_naive(self, node, depth: int) -> None:
        if depth == len(self.space):
            plan = self._leaf(node)
            if plan is not None:
                self.kept_candidates.append(plan)
                if len(self.kept_candidates) > self.planner.memory_budget_candidates:
                    raise PlannerOutOfMemory(
                        f"naive enumeration exceeded the memory budget of "
                        f"{self.planner.memory_budget_candidates} candidates for "
                        f"query {self.logical.query_name!r}"
                    )
            return
        stats = self.stats
        for _index, choice in self._options(depth):
            stats.prefixes_considered += 1
            try:
                child = self.evaluator.naive_extend(node, choice)
            except ExpansionError:
                # The original planner only discovered structural failures
                # at the leaves: it walked every prefix below this one and
                # scored-and-failed every leaf. Account for both without
                # walking the subtree.
                stats.candidates_scored += self.suffix_leaves[depth + 1]
                stats.prefixes_considered += self.suffix_prefixes[depth + 1]
                continue
            self._dfs_naive(child, depth + 1)


# --------------------------------------------------------------------------
# The planner
# --------------------------------------------------------------------------


class Planner:
    """Arboretum's query planner.

    Parameters mirror §4.2: the analyst supplies an optimization ``goal``
    and optional ``constraints`` (limits on any of the six metrics); the
    planner returns the best plan that satisfies the limits, or raises
    :class:`PlanningFailed`.

    ``engine`` selects the search evaluator ("incremental" or
    "reference" — see the module docstring); ``order_choices`` visits
    surviving children cheapest-first (defaults to on when heuristics are
    on); ``workers`` > 1 splits the top-level choice subtrees across a
    process pool (ignored by the naive ablation, whose out-of-memory
    trajectory must stay sequential).
    """

    def __init__(
        self,
        env: QueryEnvironment,
        model: Optional[CostModel] = None,
        constraints: Optional[Constraints] = None,
        goal: Optional[Goal] = None,
        heuristics: bool = True,
        memory_budget_candidates: int = 250_000,
        verify: Optional[bool] = None,
        engine: str = "incremental",
        order_choices: Optional[bool] = None,
        workers: int = 1,
    ):
        self.env = env
        self.model = model or CostModel()
        self.constraints = constraints or Constraints()
        self.goal = goal or Goal()
        self.heuristics = heuristics
        self.memory_budget_candidates = memory_budget_candidates
        if verify is None:
            verify = os.environ.get("REPRO_VERIFY", "").lower() in ("1", "true", "yes")
        self.verify = verify
        if engine not in ("incremental", "reference"):
            raise ValueError(f"unknown search engine {engine!r}")
        self.engine = engine
        if order_choices is None:
            order_choices = heuristics
        self.order_choices = order_choices
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    # ----------------------------------------------------------- front door

    def plan_source(
        self,
        source: str,
        name: str = "query",
        certificate: Optional[Certificate] = None,
    ) -> PlanningResult:
        """Parse, certify, lower, and plan query-language source text."""
        return self.plan_program(parse(source), name, certificate)

    def plan_program(
        self,
        program: Program,
        name: str = "query",
        certificate: Optional[Certificate] = None,
        fold_constants: bool = True,
    ) -> PlanningResult:
        """Plan a parsed program.

        ``certificate`` defaults to automatic certification; pass a
        :func:`repro.privacy.certify.manual_certificate` to plan programs
        whose privacy proof the analyst supplies themselves (§4.2).
        Constant folding runs first by default, which also guarantees the
        §4.4 rule that no vignette consists only of constant assignments.
        """
        if fold_constants:
            program = simplify(program)
        if certificate is None:
            certificate = certify(program, self.env)
        logical = lower(program, self.env, certificate, name)
        return self.plan_logical(logical, certificate)

    # --------------------------------------------------------------- search

    def plan_logical(
        self, logical: LogicalPlan, certificate: Certificate
    ) -> PlanningResult:
        started = time.perf_counter()
        space = choice_space(logical)
        stats = PlannerStatistics(space_size=space_size(logical))
        # Split the tree at the first op with real alternatives (the input
        # op is often forced, so depth 0 may have a single option).
        split_depth = next(
            (d for d, (_op, opts) in enumerate(space) if len(opts) > 1), None
        )
        if self.workers > 1 and self.heuristics and split_depth is not None:
            best = self._plan_parallel(logical, space, stats, split_depth)
        else:
            best, run_stats = self.search_logical(logical)
            stats.merge_counters(run_stats)
        stats.runtime_seconds = time.perf_counter() - started
        result = PlanningResult(best, stats, certificate, logical)
        if best is None:
            raise PlanningFailed(
                f"no plan for {logical.query_name!r} satisfies the constraints "
                f"({stats.candidates_scored} candidates scored, "
                f"{stats.pruned_by_constraint} pruned by constraints)"
            )
        # Post-condition: dataflow-analyze the winning plan and attach the
        # machine-checkable privacy certificate. The analysis never raises;
        # under --verify a dirty report (or any failed invariant) is fatal.
        # Imported lazily — verify depends on this module.
        from ..verify.dataflow import analyze_planning_result

        df_report, privacy_certificate = analyze_planning_result(result)
        result.privacy_certificate = privacy_certificate
        if self.verify:
            from ..verify import verify_planning_result

            verify_planning_result(result).raise_if_failed()
            df_report.raise_if_failed()
        return result

    def search_logical(
        self,
        logical: LogicalPlan,
        root_options: Optional[Sequence[int]] = None,
        split_depth: int = 0,
    ) -> Tuple[Optional[Plan], PlannerStatistics]:
        """One sequential search (optionally over a split-level subset).

        Returns the incumbent and the effort counters for this run only;
        :meth:`plan_logical` handles failure/verification policy.
        """
        space = choice_space(logical)
        stats = PlannerStatistics()
        if self.engine == "reference":
            evaluator = _ReferenceEvaluator(
                logical, self.model, self.env.num_participants
            )
        else:
            evaluator = _IncrementalEvaluator(
                logical, self.model, self.env.num_participants
            )
        cost_hits = self.model.cache_hits
        cost_misses = self.model.cache_misses
        run = _SearchRun(self, logical, space, evaluator, stats, split_depth)
        best = run.run(root_options)
        stats.cost_cache_hits = self.model.cache_hits - cost_hits
        stats.cost_cache_misses = self.model.cache_misses - cost_misses
        stats.expansion_cache_hits = evaluator.cache_hits
        stats.expansion_cache_misses = evaluator.cache_misses
        return best, stats

    def _plan_parallel(
        self, logical: LogicalPlan, space, stats, split_depth: int
    ) -> Optional[Plan]:
        """Fan the split-level choice subtrees across a fork pool.

        Subtree k gets every workers-th option starting at k, so
        partitions are balanced across heterogeneous options. Results are
        merged in partition order with the same lexicographic comparison
        the sequential search applies, making the outcome deterministic
        for any worker count.
        """
        import multiprocessing

        options = space[split_depth][1]
        workers = max(1, min(self.workers, len(options)))
        parts = [list(range(len(options)))[k::workers] for k in range(workers)]
        payloads = [
            (
                logical,
                self.model,
                self.constraints,
                self.goal,
                self.engine,
                self.order_choices,
                self.memory_budget_candidates,
                part,
                split_depth,
            )
            for part in parts
        ]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: degrade gracefully
            ctx = None
        if ctx is None:
            results = [_search_subtree(payload) for payload in payloads]
        else:
            with ctx.Pool(processes=workers) as pool:
                results = pool.map(_search_subtree, payloads)
        stats.workers = workers
        best: Optional[Plan] = None
        best_score = float("inf")
        best_composite = float("inf")
        for plan, run_stats in results:
            stats.merge_counters(run_stats)
            if plan is not None and self.goal.better(
                plan.cost, best_score, best_composite
            ):
                best = plan
                best_score = self.goal.score(plan.cost)
                best_composite = self.goal.composite(plan.cost)
        return best


def _search_subtree(payload):
    """Worker entry point: sequential search over one subtree partition."""
    (
        logical,
        model,
        constraints,
        goal,
        engine,
        order_choices,
        memory_budget,
        root_options,
        split_depth,
    ) = payload
    planner = Planner(
        logical.env,
        model=model,
        constraints=constraints,
        goal=goal,
        heuristics=True,
        memory_budget_candidates=memory_budget,
        verify=False,
        engine=engine,
        order_choices=order_choices,
        workers=1,
    )
    return planner.search_logical(
        logical, root_options=root_options, split_depth=split_depth
    )


def plan_query(
    source: str,
    env: QueryEnvironment,
    name: str = "query",
    constraints: Optional[Constraints] = None,
    goal: Optional[Goal] = None,
    model: Optional[CostModel] = None,
    heuristics: bool = True,
    memory_budget_candidates: int = 250_000,
    verify: Optional[bool] = None,
    engine: str = "incremental",
    order_choices: Optional[bool] = None,
    workers: int = 1,
) -> PlanningResult:
    """One-call convenience wrapper: source text in, PlanningResult out."""
    planner = Planner(
        env,
        model=model,
        constraints=constraints,
        goal=goal,
        heuristics=heuristics,
        memory_budget_candidates=memory_budget_candidates,
        verify=verify,
        engine=engine,
        order_choices=order_choices,
        workers=workers,
    )
    return planner.plan_source(source, name)
