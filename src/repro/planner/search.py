"""The query planner: search over candidate plans (§4.4, §4.6, §7.3).

The planner explores the choice tree produced by ``expand.choice_space``
depth-first, scoring partial assignments as it goes. Two heuristics keep
the search tractable (§4.4):

* **branch-and-bound** — a prefix is scored by instantiating only the ops
  chosen so far; since costs only grow as ops are added, a prefix that
  already violates a constraint or exceeds the best-known goal value can
  be discarded with its whole subtree;
* **constraint pruning** — partial solutions are discarded as soon as they
  exceed one of the analyst's limits.

Setting ``heuristics=False`` reproduces the §7.3 ablation: the planner
enumerates every full candidate, keeps them all in memory like a naive
implementation, and aborts with :class:`PlannerOutOfMemory` once the
candidate list exceeds the memory budget (the paper's planner ran out of
memory for half the queries with heuristics disabled).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional

from ..analysis.types import QueryEnvironment
from ..lang.ast import Program
from ..lang.parser import parse
from ..lang.simplify import simplify
from ..privacy.certify import Certificate, certify
from .costmodel import Constraints, CostModel, Goal
from .expand import Choice, ExpansionError, choice_space, instantiate, space_size
from .ir import LogicalPlan, lower
from .plan import Plan, score_vignettes


class PlanningFailed(Exception):
    """Raised when no candidate satisfies the analyst's constraints."""


class PlannerOutOfMemory(Exception):
    """Raised by the no-heuristics ablation when the candidate list blows up."""


@dataclass
class PlannerStatistics:
    """Search effort counters (Fig 9 reports runtime; §7.3 reports prefixes)."""

    space_size: int = 0
    prefixes_considered: int = 0
    candidates_scored: int = 0
    candidates_feasible: int = 0
    pruned_by_constraint: int = 0
    pruned_by_bound: int = 0
    runtime_seconds: float = 0.0


@dataclass
class PlanningResult:
    """The chosen plan plus search statistics."""

    plan: Optional[Plan]
    statistics: PlannerStatistics
    certificate: Certificate
    logical_plan: LogicalPlan

    @property
    def succeeded(self) -> bool:
        return self.plan is not None


class Planner:
    """Arboretum's query planner.

    Parameters mirror §4.2: the analyst supplies an optimization ``goal``
    and optional ``constraints`` (limits on any of the six metrics); the
    planner returns the best plan that satisfies the limits, or raises
    :class:`PlanningFailed`.
    """

    def __init__(
        self,
        env: QueryEnvironment,
        model: Optional[CostModel] = None,
        constraints: Optional[Constraints] = None,
        goal: Optional[Goal] = None,
        heuristics: bool = True,
        memory_budget_candidates: int = 250_000,
        verify: Optional[bool] = None,
    ):
        self.env = env
        self.model = model or CostModel()
        self.constraints = constraints or Constraints()
        self.goal = goal or Goal()
        self.heuristics = heuristics
        self.memory_budget_candidates = memory_budget_candidates
        if verify is None:
            verify = os.environ.get("REPRO_VERIFY", "").lower() in ("1", "true", "yes")
        self.verify = verify

    # ----------------------------------------------------------- front door

    def plan_source(
        self,
        source: str,
        name: str = "query",
        certificate: Optional[Certificate] = None,
    ) -> PlanningResult:
        """Parse, certify, lower, and plan query-language source text."""
        return self.plan_program(parse(source), name, certificate)

    def plan_program(
        self,
        program: Program,
        name: str = "query",
        certificate: Optional[Certificate] = None,
        fold_constants: bool = True,
    ) -> PlanningResult:
        """Plan a parsed program.

        ``certificate`` defaults to automatic certification; pass a
        :func:`repro.privacy.certify.manual_certificate` to plan programs
        whose privacy proof the analyst supplies themselves (§4.2).
        Constant folding runs first by default, which also guarantees the
        §4.4 rule that no vignette consists only of constant assignments.
        """
        if fold_constants:
            program = simplify(program)
        if certificate is None:
            certificate = certify(program, self.env)
        logical = lower(program, self.env, certificate, name)
        return self.plan_logical(logical, certificate)

    # --------------------------------------------------------------- search

    def plan_logical(
        self, logical: LogicalPlan, certificate: Certificate
    ) -> PlanningResult:
        started = time.perf_counter()
        stats = PlannerStatistics(space_size=space_size(logical))
        space = choice_space(logical)
        best: Optional[Plan] = None
        best_score = float("inf")
        best_composite = float("inf")
        kept_candidates: List[Plan] = []  # only populated without heuristics

        def leaf(choices: List[Choice]) -> Optional[Plan]:
            nonlocal best, best_score, best_composite
            stats.candidates_scored += 1
            try:
                vignettes, scheme = instantiate(logical, choices, self.model)
            except ExpansionError:
                return None
            score = score_vignettes(
                vignettes, self.env.num_participants, self.model
            )
            if not self.constraints.allows(score.cost):
                stats.pruned_by_constraint += 1
                return None
            stats.candidates_feasible += 1
            plan = Plan(
                query_name=logical.query_name,
                choices={c.key: c.label() for c in choices},
                vignettes=vignettes,
                scheme=scheme,
                score=score,
                choice_list=list(choices),
            )
            if self.goal.better(score.cost, best_score, best_composite):
                best = plan
                best_score = self.goal.score(score.cost)
                best_composite = self.goal.composite(score.cost)
            return plan

        def dfs(depth: int, choices: List[Choice]) -> None:
            if depth == len(space):
                plan = leaf(choices)
                if not self.heuristics and plan is not None:
                    kept_candidates.append(plan)
                    if len(kept_candidates) > self.memory_budget_candidates:
                        raise PlannerOutOfMemory(
                            f"naive enumeration exceeded the memory budget of "
                            f"{self.memory_budget_candidates} candidates for "
                            f"query {logical.query_name!r}"
                        )
                return
            for choice in space[depth][1]:
                stats.prefixes_considered += 1
                next_choices = choices + [choice]
                if self.heuristics:
                    try:
                        vignettes, _scheme = instantiate(
                            logical, next_choices, self.model, partial=True
                        )
                    except ExpansionError:
                        continue
                    partial_score = score_vignettes(
                        vignettes, self.env.num_participants, self.model
                    )
                    violation = self.constraints.first_violation(partial_score.cost)
                    if violation is not None:
                        stats.pruned_by_constraint += 1
                        continue
                    partial_value = self.goal.score(partial_score.cost)
                    # Strict bound: costs only grow as ops are added, so a
                    # prefix already *strictly* above the incumbent cannot
                    # improve it; ties stay open for the lexicographic
                    # composite to decide at the leaves.
                    if partial_value > best_score and not self.goal.is_tied(
                        partial_value, best_score
                    ):
                        stats.pruned_by_bound += 1
                        continue
                dfs(depth + 1, next_choices)

        dfs(0, [])
        stats.runtime_seconds = time.perf_counter() - started
        result = PlanningResult(best, stats, certificate, logical)
        if best is None:
            raise PlanningFailed(
                f"no plan for {logical.query_name!r} satisfies the constraints "
                f"({stats.candidates_scored} candidates scored, "
                f"{stats.pruned_by_constraint} pruned by constraints)"
            )
        if self.verify:
            # Post-condition: the winning plan must satisfy every static
            # invariant. Imported lazily — verify depends on this module.
            from ..verify import verify_planning_result

            verify_planning_result(result).raise_if_failed()
        return result


def plan_query(
    source: str,
    env: QueryEnvironment,
    name: str = "query",
    constraints: Optional[Constraints] = None,
    goal: Optional[Goal] = None,
    model: Optional[CostModel] = None,
    heuristics: bool = True,
) -> PlanningResult:
    """One-call convenience wrapper: source text in, PlanningResult out."""
    planner = Planner(
        env,
        model=model,
        constraints=constraints,
        goal=goal,
        heuristics=heuristics,
    )
    return planner.plan_source(source, name)
