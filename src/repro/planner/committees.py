"""Committee sizing (§5.1).

Committees are chosen by sortition, so each member is Byzantine
independently with probability f (the global fraction of malicious
devices). A plan with c committees needs an honest majority in *all* c
committees with high probability, even after a fraction g of each
committee's members goes offline (malicious members can all conspire to
stay online). The minimum committee size m is the smallest number with

    1 - (Σ_{i=0..⌊(1-g)·m/2⌋} C(m,i) f^i (1-f)^{m-i})^c  ≤  p1,

where p1 is the per-round privacy-failure budget. If the system runs R
rounds with overall failure budget p, then p1 solves p = 1 - (1-p1)^R.

Because the number of committees varies between query plans, the planner
recomputes m for every candidate before scoring it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

#: Defaults from the paper's evaluation (§7.1).
DEFAULT_MALICIOUS_FRACTION = 0.03
DEFAULT_CHURN_TOLERANCE = 0.15
DEFAULT_FAILURE_PROBABILITY = 1e-8
DEFAULT_ROUNDS = 1000


def per_round_failure_budget(p_total: float, rounds: int) -> float:
    """Solve p_total = 1 - (1 - p1)^rounds for p1."""
    if not 0.0 < p_total < 1.0:
        raise ValueError("total failure probability must be in (0, 1)")
    if rounds < 1:
        raise ValueError("need at least one round")
    return 1.0 - (1.0 - p_total) ** (1.0 / rounds)


def _binomial_upper_tail(m: int, f: float, max_bad: int) -> float:
    """P[Binomial(m, f) > max_bad], summed in log space for stability.

    Working with the (tiny) upper tail directly keeps full relative
    precision — the lower tail is ~1 and its complement would drown in
    floating-point rounding around 1e-13.
    """
    if max_bad >= m:
        return 0.0
    if max_bad < 0:
        return 1.0
    log_f = math.log(f)
    log_1mf = math.log1p(-f)
    log_terms = []
    for i in range(max_bad + 1, m + 1):
        log_c = math.lgamma(m + 1) - math.lgamma(i + 1) - math.lgamma(m - i + 1)
        log_terms.append(log_c + i * log_f + (m - i) * log_1mf)
    top = max(log_terms)
    return math.exp(top) * sum(math.exp(t - top) for t in log_terms)


def committee_failure_probability(
    m: int,
    num_committees: int,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    churn_tolerance: float = DEFAULT_CHURN_TOLERANCE,
) -> float:
    """P[some committee loses its honest majority] for committee size m.

    A committee of m members stays safe if, among the (1-g)·m members who
    remain online in the worst case, a majority is honest — i.e. the number
    of malicious members is at most ⌊(1-g)·m/2⌋.
    """
    if m < 1:
        return 1.0
    max_bad = int(math.floor((1.0 - churn_tolerance) * m / 2.0))
    p_bad_single = _binomial_upper_tail(m, malicious_fraction, max_bad)
    if p_bad_single >= 1.0:
        return 1.0
    # 1 - (1 - p)^c, computed via expm1/log1p to keep precision for tiny p.
    return -math.expm1(num_committees * math.log1p(-p_bad_single))


#: Monotonicity hints for the m-search: per sizing configuration, a map from
#: a previously computed m to the [min, max] committee counts that produced
#: it. m is nondecreasing in the committee count (more committees -> more
#: chances to lose an honest majority), so a count below the query's bounds
#: m from below and a count above bounds it from above; when the two bounds
#: meet, the linear scan is skipped entirely.
_SIZE_HINTS: dict = {}


@lru_cache(maxsize=16384)
def minimum_committee_size(
    num_committees: int,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    churn_tolerance: float = DEFAULT_CHURN_TOLERANCE,
    per_round_budget: float = None,
    total_failure_probability: float = DEFAULT_FAILURE_PROBABILITY,
    rounds: int = DEFAULT_ROUNDS,
) -> int:
    """Smallest m keeping all committees honest-majority w.h.p. (§5.1)."""
    if num_committees < 1:
        raise ValueError("need at least one committee")
    p1 = (
        per_round_budget
        if per_round_budget is not None
        else per_round_failure_budget(total_failure_probability, rounds)
    )
    config = (malicious_fraction, churn_tolerance, p1)
    hints = _SIZE_HINTS.setdefault(config, {})
    lo, hi = 3, None
    for known_m, (count_lo, count_hi) in hints.items():
        if count_lo <= num_committees and known_m > lo:
            lo = known_m
        if count_hi >= num_committees and (hi is None or known_m < hi):
            hi = known_m
    if hi is not None and lo >= hi:
        # Bracketed exactly between previously computed counts.
        m = lo
    else:
        m = lo
        while committee_failure_probability(
            m, num_committees, malicious_fraction, churn_tolerance
        ) > p1:
            m += 1
            if m > 10000:
                raise RuntimeError("committee size search diverged")
    entry = hints.setdefault(m, [num_committees, num_committees])
    entry[0] = min(entry[0], num_committees)
    entry[1] = max(entry[1], num_committees)
    return m


@dataclass(frozen=True)
class CommitteeParameters:
    """Committee geometry for one plan: the sizing inputs and the result."""

    num_committees: int
    committee_size: int
    malicious_fraction: float
    churn_tolerance: float
    per_round_budget: float

    @classmethod
    def for_plan(
        cls,
        num_committees: int,
        malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
        churn_tolerance: float = DEFAULT_CHURN_TOLERANCE,
        total_failure_probability: float = DEFAULT_FAILURE_PROBABILITY,
        rounds: int = DEFAULT_ROUNDS,
    ) -> "CommitteeParameters":
        # Frozen + deterministic, so instances are shared via the lru cache
        # (the planner calls this once per search node).
        return _parameters_cached(
            num_committees,
            malicious_fraction,
            churn_tolerance,
            total_failure_probability,
            rounds,
        )

    @property
    def devices_selected(self) -> int:
        return self.num_committees * self.committee_size

    def selection_fraction(self, num_participants: int) -> float:
        return min(1.0, self.devices_selected / num_participants)

    @property
    def honest_quorum(self) -> int:
        """Online members guaranteed to include an honest majority."""
        return int(math.ceil((1.0 - self.churn_tolerance) * self.committee_size))


@lru_cache(maxsize=16384)
def _parameters_cached(
    num_committees: int,
    malicious_fraction: float,
    churn_tolerance: float,
    total_failure_probability: float,
    rounds: int,
) -> CommitteeParameters:
    p1 = per_round_failure_budget(total_failure_probability, rounds)
    m = minimum_committee_size(
        num_committees, malicious_fraction, churn_tolerance, p1
    )
    return CommitteeParameters(
        num_committees, m, malicious_fraction, churn_tolerance, p1
    )


def clear_sizing_caches() -> None:
    """Reset sizing memoization (benchmark fairness between engines)."""
    minimum_committee_size.cache_clear()
    _parameters_cached.cache_clear()
    _SIZE_HINTS.clear()
