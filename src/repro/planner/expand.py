"""Operator instantiation: logical ops -> concrete vignette sequences (§4.3-4.5).

For every logical operator this module enumerates the legal concrete
instantiations (the *choice space*), and turns one full assignment of
choices into a vignette sequence with encryption types assigned:

* ``sum`` can run as a flat loop on the aggregator, or as a sum tree of a
  chosen fanout over participant devices or over committees (§4.3);
* the ``em`` can use explicit exponentiation in FHE on the aggregator, or
  Gumbel noise in committee MPC with chosen decryption/noising batch sizes
  and argmax-tree fanout (Fig 4, Fig 5);
* transforms with only linear operations can stay in AHE on the
  aggregator; anything nonlinear forces FHE or committee MPC (§4.5);
* whichever scheme the assignment needs, a key-generation vignette is
  inserted up front and the key travels to the decryption committees
  through a binary VSR redistribution tree (§5.2).

The encryption-type rule of §4.5 falls out structurally: values derived
from db stay inside HE on the aggregator/participants and inside MPC
sharings on committees; only mechanism outputs are declassified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .committees import CommitteeParameters
from .costmodel import (
    CostModel,
    DeviceProfile,
    REFERENCE_SERVER,
    SchemeParams,
    Work,
    ahe_params_for,
    fhe_params_for,
)
from .ir import (
    Aggregate,
    EncryptInput,
    LogicalOp,
    LogicalPlan,
    NoiseOutput,
    Output,
    Postprocess,
    SelectMax,
    VectorTransform,
)
from .plan import Location, ScoreAccumulator, Vignette

#: Parameter grids (§4.3: "there is no single best degree for this tree").
TREE_FANOUTS = (4, 16, 64, 256, 1024, 4096)
MPC_BATCH_SIZES = (16, 64, 256, 1024)
DEC_BATCH_SIZES = (512, 2048, 8192)
NOISE_BATCH_SIZES = (4, 16, 64)
ARGMAX_FANOUTS = (2, 8, 32)
SAMPLE_BIN_CHOICES = (2, 4, 8, 16, 32)


@dataclass(frozen=True)
class Choice:
    """One instantiation decision for one logical op."""

    key: str  # which op (e.g. "aggregate[2]")
    option: str  # e.g. "participant_tree"
    params: Tuple[int, ...] = ()

    def label(self) -> str:
        if self.params:
            return f"{self.option}{list(self.params)}"
        return self.option


class ExpansionError(Exception):
    """Raised when a choice assignment is structurally invalid."""


def choice_space(plan: LogicalPlan) -> List[Tuple[LogicalOp, List[Choice]]]:
    """The per-op list of legal instantiations, in pipeline order."""
    space: List[Tuple[LogicalOp, List[Choice]]] = []
    for i, op in enumerate(plan.ops):
        key = f"{op.name}[{i}]"
        options: List[Choice] = []
        if isinstance(op, EncryptInput):
            if op.sample_fraction < 1.0:
                options = [
                    Choice(key, "binned_upload", (b,)) for b in SAMPLE_BIN_CHOICES
                ]
            else:
                options = [Choice(key, "direct_upload")]
        elif isinstance(op, Aggregate):
            options = [Choice(key, "flat_aggregator")]
            options += [Choice(key, "participant_tree", (f,)) for f in TREE_FANOUTS]
            options += [Choice(key, "committee_tree", (f,)) for f in TREE_FANOUTS]
        elif isinstance(op, VectorTransform):
            if op.nonlinear_ops == 0:
                options.append(Choice(key, "aggregator_ahe"))
            options.append(Choice(key, "aggregator_fhe"))
            if op.nonlinear_ops > 0:
                # The TFHE alternative (§2.2): a committee switches the
                # aggregate from the arithmetic scheme to boolean FHE, the
                # aggregator evaluates the comparison-heavy circuit gate by
                # gate, and a committee converts the result to sharings.
                options.append(Choice(key, "aggregator_tfhe", (32,)))
            options += [Choice(key, "committee_mpc", (b,)) for b in MPC_BATCH_SIZES]
            # §4.4: consecutive vignettes normally may not share a location
            # — except two committee vignettes, which may fuse so one
            # committee does both steps (useful under per-member compute
            # limits). Legal when a SelectMax immediately follows.
            if i + 1 < len(plan.ops) and isinstance(plan.ops[i + 1], SelectMax):
                options += [
                    Choice(key, "committee_mpc_fused", (b,)) for b in MPC_BATCH_SIZES
                ]
        elif isinstance(op, SelectMax):
            options.append(Choice(key, "expo_fhe"))
            styles = ("oneshot", "iterative") if op.k > 1 else ("single",)
            for style_index, _style in enumerate(styles):
                for d in DEC_BATCH_SIZES:
                    for b in NOISE_BATCH_SIZES:
                        for f in ARGMAX_FANOUTS:
                            options.append(
                                Choice(key, "gumbel_mpc", (style_index, d, b, f))
                            )
        elif isinstance(op, NoiseOutput):
            batches = sorted({min(b, max(op.count, 1)) for b in NOISE_BATCH_SIZES})
            options = [Choice(key, "committee_noise", (b,)) for b in batches]
        elif isinstance(op, (Postprocess, Output)):
            options = [Choice(key, "aggregator_clear")]
        else:
            raise ExpansionError(f"no instantiations known for {op.name}")
        space.append((op, options))
    return space


def space_size(plan: LogicalPlan) -> int:
    total = 1
    for _op, options in choice_space(plan):
        total *= len(options)
    return total


# --------------------------------------------------------------------------
# Instantiation
# --------------------------------------------------------------------------


@dataclass
class _BuildState:
    """Mutable state threaded through instantiation."""

    scheme: SchemeParams
    cts_per_participant: int
    encrypted: bool = False  # aggregate currently lives in ciphertexts
    shared: bool = False  # aggregate currently lives in MPC sharings
    dec_groups: int = 0  # committees that received key shares
    group_counter: int = 0
    #: A transform deferred for fusion into the next SelectMax's noising
    #: committees: (batch, nonlinear ops per element, linear ops per elem).
    fused_transform: Optional[Tuple[int, float, float]] = None

    def new_group(self, prefix: str) -> str:
        self.group_counter += 1
        return f"{prefix}#{self.group_counter}"


def _needs_fhe(ops: Sequence[LogicalOp], choices: Sequence[Choice]) -> bool:
    """§4.5 cryptosystem rule: FHE iff a homomorphic stage needs more than
    additions; everything handled in MPC can stay under AHE."""
    for op, choice in zip(ops, choices):
        if isinstance(op, VectorTransform) and choice.option == "aggregator_fhe":
            return True
        if isinstance(op, SelectMax) and choice.option == "expo_fhe":
            return True
        if isinstance(op, VectorTransform) and choice.option == "aggregator_ahe":
            continue
    return False


def _ceil_div(a: float, b: float) -> int:
    return int(math.ceil(a / b)) if b else 0


def _scheme_for_prefix(
    row_width: int, ops: Sequence[LogicalOp], choices: Sequence[Choice]
) -> Tuple[int, bool, SchemeParams, int, int]:
    """Scheme selection (§4.5) for a (possibly partial) choice prefix.

    Returns (bins, use_fhe, scheme, packed, cts). Both inputs are monotone
    along a prefix: ``bins`` is fixed by the EncryptInput choice and
    ``use_fhe`` only ever flips from False to True.
    """
    bins = 1
    for op, choice in zip(ops, choices):
        if isinstance(op, EncryptInput) and choice.option == "binned_upload":
            bins = choice.params[0]
    packed = max(row_width, 1) * bins
    use_fhe = _needs_fhe(ops, choices)
    scheme = fhe_params_for(packed, depth=6) if use_fhe else ahe_params_for(packed)
    cts = max(1, _ceil_div(packed, scheme.slots))
    return bins, use_fhe, scheme, packed, cts


def _base_vignettes(
    scheme: SchemeParams, packed: int, cts: int, n: int, constants: dict
) -> List[Vignette]:
    """The always-present input/verify/broadcast base vignettes."""
    audit_leaves = constants["audit_leaves_per_device"]
    audit_bytes = audit_leaves * (scheme.ciphertext_bytes + constants["merkle_path_bytes"])
    # One Groth16 proof covers one circuit chunk. The R1CS encodes the
    # ciphertext arithmetic, so the statement size scales with both the
    # packed width and the ciphertext-modulus size (FHE uploads carry much
    # bigger coefficients than depth-0 AHE ones).
    chunk = constants["zkp_chunk_slots"]
    modulus_scale = max(1.0, scheme.ciphertext_modulus_bits / 60.0)
    proofs_per_device = max(1, _ceil_div(packed * modulus_scale, chunk))
    vignettes: List[Vignette] = []
    input_work = Work(
        he_encryptions=cts,
        ring_slots=scheme.slots,
        zkp_proofs=proofs_per_device,
        zkp_constraint_slots=min(float(packed), chunk),
        payload_bytes_sent=cts * scheme.ciphertext_bytes,
        payload_bytes_received=scheme.public_key_bytes
        + constants["certificate_bytes"]
        + audit_bytes,
        hash_bytes=audit_bytes,
        fixed_seconds=constants["sortition_signature_seconds"],
    )
    vignettes.append(
        Vignette("input", Location.PARTICIPANT, scheme.name, input_work, instances=n)
    )

    verify_work = Work(
        zkp_verifications=n * proofs_per_device,
        hash_bytes=n * 64.0,
    )
    vignettes.append(Vignette("verify", Location.AGGREGATOR, "clear", verify_work))

    broadcast_work = Work(
        payload_bytes_sent=n
        * (
            scheme.public_key_bytes
            + constants["certificate_bytes"]
            + audit_bytes
        )
    )
    vignettes.append(Vignette("forwarding", Location.AGGREGATOR, "clear", broadcast_work))
    return vignettes


def _emit_pipeline_op(
    vignettes: List[Vignette],
    state: _BuildState,
    op: LogicalOp,
    choice: Choice,
    n: int,
) -> None:
    """Emit one pipeline op's vignettes, advancing the build state."""
    if isinstance(op, EncryptInput):
        state.encrypted = True
    elif isinstance(op, Aggregate):
        _emit_aggregate(vignettes, state, choice, n, state.cts_per_participant)
    elif isinstance(op, VectorTransform):
        _emit_transform(vignettes, state, choice, op)
    elif isinstance(op, SelectMax):
        _emit_select_max(vignettes, state, choice, op)
    elif isinstance(op, NoiseOutput):
        _emit_noise_output(vignettes, state, choice, op)
    elif isinstance(op, Postprocess):
        vignettes.append(
            Vignette(
                "postprocess",
                Location.AGGREGATOR,
                "clear",
                Work(fixed_seconds=op.scalar_ops * 1e-8),
            )
        )
    elif isinstance(op, Output):
        vignettes.append(
            Vignette(
                "publish",
                Location.AGGREGATOR,
                "clear",
                Work(payload_bytes_sent=4096.0),
            )
        )


def _keygen_vignette(scheme: SchemeParams, dec_groups) -> Vignette:
    """The key-generation vignette (§5.2).

    One keygen committee generates the keypair and starts the VSR tree
    that carries key shares to every decryption-capable committee. The
    work depends on ``dec_groups`` only through the binary-tree multiplier
    ``min(2, max(dec_groups, 1))`` — i.e. only on whether the plan has
    more than one decryption group.
    """
    key_elems = scheme.secret_key_elements
    keygen_work = Work(
        dist_keygens=1.0,
        mpc_setup=1.0,
        mpc_rounds=20.0,
        vsr_elements_sent=key_elems * min(2.0, max(dec_groups, 1.0)),
        ring_slots=scheme.slots,
    )
    return Vignette(
        "keygen",
        Location.COMMITTEE,
        "mpc",
        keygen_work,
        instances=1.0,
        committee_group="keygen",
        committee_type="keygen",
    )


def instantiate(
    plan: LogicalPlan,
    choices: Sequence[Choice],
    model: CostModel,
    partial: bool = False,
) -> Tuple[List[Vignette], SchemeParams]:
    """Build the vignette sequence for one (possibly partial) assignment.

    With ``partial=True``, only the ops covered by ``choices`` are emitted
    (plus the always-present input/verify/broadcast base), yielding a
    monotone lower bound used by branch-and-bound.
    """
    ops = plan.ops[: len(choices)] if partial else plan.ops
    if not partial and len(choices) != len(plan.ops):
        raise ExpansionError("need one choice per logical op")

    env = plan.env
    n = env.num_participants

    # Scheme selection (§4.5): decide from the full assignment when
    # available; partial prefixes assume AHE unless already forced.
    _bins, _use_fhe, scheme, packed, cts = _scheme_for_prefix(
        env.row_width, ops, choices
    )

    state = _BuildState(scheme=scheme, cts_per_participant=cts)
    vignettes = _base_vignettes(scheme, packed, cts, n, model.constants)

    for op, choice in zip(ops, choices):
        _emit_pipeline_op(vignettes, state, op, choice, n)

    vignettes.insert(1, _keygen_vignette(scheme, state.dec_groups))
    return vignettes, scheme


# ------------------------------------------------------------- op emitters


def _emit_aggregate(
    vignettes: List[Vignette],
    state: _BuildState,
    choice: Choice,
    n: int,
    cts: int,
) -> None:
    scheme = state.scheme
    if choice.option == "flat_aggregator":
        work = Work(he_additions=float(n) * cts, ring_slots=scheme.slots)
        vignettes.append(Vignette("aggregate", Location.AGGREGATOR, scheme.name, work))
        return
    fanout = choice.params[0]
    nodes = max(1.0, n / max(fanout - 1, 1))
    node_work = Work(
        he_additions=float(fanout) * cts,
        ring_slots=scheme.slots,
        payload_bytes_sent=cts * scheme.ciphertext_bytes,
        payload_bytes_received=float(fanout) * cts * scheme.ciphertext_bytes,
    )
    if choice.option == "participant_tree":
        vignettes.append(
            Vignette(
                "aggregate-tree",
                Location.PARTICIPANT,
                scheme.name,
                node_work,
                instances=nodes,
            )
        )
    elif choice.option == "committee_tree":
        group = state.new_group("aggtree")
        vignettes.append(
            Vignette(
                "aggregate-tree",
                Location.COMMITTEE,
                scheme.name,
                node_work,
                instances=nodes,
                committee_group=group,
                committee_type="operations",
            )
        )
    else:
        raise ExpansionError(f"unknown aggregate option {choice.option}")


def _emit_decryption_layer(
    vignettes: List[Vignette],
    state: _BuildState,
    length: int,
    dec_batch: int,
) -> None:
    """Threshold-decrypt the encrypted aggregate into MPC sharings.

    Each decryption committee receives the relevant ciphertext(s) plus key
    shares via the VSR tree, jointly decrypts its slot range into shares,
    and forwards them (again via VSR) to the consuming committees.
    """
    if not state.encrypted:
        return
    scheme = state.scheme
    committees = max(1, _ceil_div(length, dec_batch))
    per_committee = min(dec_batch, length)
    cts_touched = max(1, _ceil_div(per_committee, scheme.slots))
    key_elems = scheme.secret_key_elements
    work = Work(
        mpc_setup=1.0,
        dist_decryptions=float(cts_touched),
        ring_slots=scheme.slots,
        mpc_rounds=4.0,
        vsr_elements_received=float(key_elems),
        vsr_elements_sent=2.0 * key_elems + per_committee,
        payload_bytes_received=cts_touched * scheme.ciphertext_bytes,
    )
    group = state.new_group("dec")
    vignettes.append(
        Vignette(
            "decrypt",
            Location.COMMITTEE,
            "mpc",
            work,
            instances=float(committees),
            committee_group=group,
            committee_type="decryption",
        )
    )
    state.dec_groups += committees
    state.encrypted = False
    state.shared = True


def _emit_transform(
    vignettes: List[Vignette],
    state: _BuildState,
    choice: Choice,
    op: VectorTransform,
) -> None:
    scheme = state.scheme
    length = max(op.length, 1)
    cts_touched = max(1, _ceil_div(length, scheme.slots))
    per_element_linear = op.linear_ops / length
    per_element_nonlinear = op.nonlinear_ops / length
    if choice.option in ("aggregator_ahe", "aggregator_fhe"):
        if state.shared:
            raise ExpansionError(
                "data already secret-shared; aggregator HE stage is illegal"
            )
        # Ops-per-element times the number of ciphertexts the vector spans.
        work = Work(
            he_additions=per_element_linear * cts_touched,
            he_comparisons=per_element_nonlinear * cts_touched,
            ring_slots=scheme.slots,
        )
        crypto = "fhe" if choice.option == "aggregator_fhe" else "ahe"
        vignettes.append(Vignette("transform", Location.AGGREGATOR, crypto, work))
        return
    if choice.option == "aggregator_tfhe":
        _emit_tfhe_transform(vignettes, state, choice, op)
        return
    if choice.option == "committee_mpc_fused":
        # Defer: the following SelectMax's noising committees absorb the
        # transform's per-element work (§4.4's fusion exception).
        state.fused_transform = (
            choice.params[0],
            per_element_nonlinear,
            per_element_linear,
        )
        return
    if choice.option == "committee_mpc":
        batch = choice.params[0]
        _emit_decryption_layer(vignettes, state, length, max(batch * 8, 512))
        committees = max(1, _ceil_div(length, batch))
        per_committee = min(batch, length)
        work = Work(
            mpc_setup=1.0,
            mpc_comparisons=per_element_nonlinear * per_committee,
            mpc_triples=per_element_linear * per_committee * 0.05,
            mpc_rounds=4.0,
            vsr_elements_received=float(per_committee),
            vsr_elements_sent=float(per_committee),
        )
        group = state.new_group("transform")
        vignettes.append(
            Vignette(
                "transform",
                Location.COMMITTEE,
                "mpc",
                work,
                instances=float(committees),
                committee_group=group,
                committee_type="operations",
            )
        )
        return
    raise ExpansionError(f"unknown transform option {choice.option}")


def _emit_tfhe_transform(
    vignettes: List[Vignette],
    state: _BuildState,
    choice: Choice,
    op: VectorTransform,
) -> None:
    """Scheme-switched transform: AHE aggregate -> TFHE bits -> circuit.

    A decryption committee opens the aggregate into its quorum and
    re-encrypts each value bitwise under TFHE; the aggregator evaluates
    the boolean circuit (comparisons are cheap per TFHE gate but every
    gate bootstraps); a second committee decrypts the results straight
    into MPC sharings for whatever follows.
    """
    from ..crypto.tfhe import addition_gate_count, comparison_gate_count

    if state.shared:
        raise ExpansionError("TFHE stage needs ciphertexts, not shares")
    bits = choice.params[0]
    scheme = state.scheme
    length = max(op.length, 1)
    cts_touched = max(1, _ceil_div(length, scheme.slots))
    tfhe_ct_bytes = 2520.0

    switch_work = Work(
        mpc_setup=1.0,
        dist_decryptions=float(cts_touched),
        ring_slots=scheme.slots,
        tfhe_encryptions=float(length * bits),
        mpc_rounds=4.0,
        vsr_elements_received=float(scheme.secret_key_elements),
        vsr_elements_sent=2.0 * scheme.secret_key_elements,
        payload_bytes_sent=length * bits * tfhe_ct_bytes,
        payload_bytes_received=cts_touched * scheme.ciphertext_bytes,
    )
    switch_group = state.new_group("tfhe-switch")
    vignettes.append(
        Vignette(
            "scheme-switch",
            Location.COMMITTEE,
            "mpc",
            switch_work,
            instances=1.0,
            committee_group=switch_group,
            committee_type="decryption",
        )
    )
    state.dec_groups += 1

    per_element = (
        op.nonlinear_ops / length * comparison_gate_count(bits)
        + op.linear_ops / length * addition_gate_count(bits)
    )
    circuit_work = Work(
        tfhe_gates=per_element * length,
        payload_bytes_received=length * bits * tfhe_ct_bytes,
    )
    vignettes.append(
        Vignette("transform", Location.AGGREGATOR, "tfhe", circuit_work)
    )

    # Convert the TFHE results into MPC sharings for the next stage.
    convert_work = Work(
        mpc_setup=1.0,
        tfhe_encryptions=float(length * bits),  # decrypt ~ encrypt cost
        mpc_inputs=float(length),
        mpc_rounds=2.0,
        vsr_elements_sent=float(length),
        payload_bytes_received=length * bits * tfhe_ct_bytes,
    )
    convert_group = state.new_group("tfhe-convert")
    vignettes.append(
        Vignette(
            "scheme-convert",
            Location.COMMITTEE,
            "mpc",
            convert_work,
            instances=1.0,
            committee_group=convert_group,
            committee_type="decryption",
        )
    )
    state.encrypted = False
    state.shared = True


def _emit_select_max(
    vignettes: List[Vignette],
    state: _BuildState,
    choice: Choice,
    op: SelectMax,
) -> None:
    scheme = state.scheme
    c = max(op.categories, 1)
    cts_c = max(1, _ceil_div(c, scheme.slots))
    if choice.option == "expo_fhe":
        if state.shared:
            raise ExpansionError("expo instantiation needs ciphertexts, not shares")
        if state.fused_transform is not None:
            raise ExpansionError(
                "a fused MPC transform cannot feed the FHE instantiation"
            )
        log_slots = max(1, scheme.ring_log2)
        rounds = op.k
        # Exponentiate every score, build the prefix-sum (rotate-and-add),
        # compare all slots against the random threshold (SIMD), then
        # isolate the selected index with a log-depth masking chain.
        work = Work(
            he_exponentiations=float(cts_c) * rounds,
            he_rotations=float(cts_c * log_slots) * rounds,
            he_additions=float(cts_c * log_slots) * rounds,
            he_comparisons=float(cts_c * (2 + log_slots)) * rounds,
            he_ct_mults=float(cts_c * log_slots) * rounds,
            ring_slots=scheme.slots,
        )
        vignettes.append(Vignette("em-expo", Location.AGGREGATOR, "fhe", work))
        # A single committee decrypts the selected index (and optionally the
        # gap / max value).
        dec_work = Work(
            mpc_setup=1.0,
            dist_decryptions=float(rounds),
            ring_slots=scheme.slots,
            mpc_rounds=4.0 * rounds,
            vsr_elements_received=float(scheme.secret_key_elements),
            vsr_elements_sent=2.0 * scheme.secret_key_elements,
            payload_bytes_received=float(rounds) * scheme.ciphertext_bytes,
        )
        group = state.new_group("dec")
        vignettes.append(
            Vignette(
                "em-decrypt",
                Location.COMMITTEE,
                "mpc",
                dec_work,
                instances=1.0,
                committee_group=group,
                committee_type="decryption",
            )
        )
        state.dec_groups += 1
        state.encrypted = False
        return
    if choice.option != "gumbel_mpc":
        raise ExpansionError(f"unknown select_max option {choice.option}")

    style_index, dec_batch, noise_batch, fanout = choice.params
    iterative = style_index == 1 and op.k > 1
    noise_rounds = op.k if iterative else 1
    select_rounds = op.k

    _emit_decryption_layer(vignettes, state, c, dec_batch)

    # Noising committees: each adds Gumbel noise to a batch of scores (Fig 5).
    if state.fused_transform is not None:
        # A fused transform rides along: the noising committees compute the
        # transform's per-element ops on their batch before noising it.
        fused_batch, fused_nonlinear, fused_linear = state.fused_transform
        noise_batch = min(noise_batch, fused_batch)
        state.fused_transform = None
    else:
        fused_nonlinear = fused_linear = 0.0
    noise_committees = max(1, _ceil_div(c, noise_batch))
    per_committee = min(noise_batch, c)
    noise_work = Work(
        mpc_setup=1.0,
        mpc_noise_samples=float(per_committee),
        mpc_comparisons=fused_nonlinear * per_committee,
        mpc_triples=fused_linear * per_committee * 0.05,
        mpc_rounds=2.0,
        vsr_elements_received=float(per_committee),
        vsr_elements_sent=float(per_committee),
    )
    for r in range(noise_rounds):
        group = state.new_group(f"noise-r{r}")
        vignettes.append(
            Vignette(
                "em-noise",
                Location.COMMITTEE,
                "mpc",
                noise_work,
                instances=float(noise_committees),
                committee_group=group,
                committee_type="operations",
            )
        )

    # Argmax tree: each committee compares ``fanout`` noised scores and
    # passes the winner up; repeated k times for top-k selection.
    for r in range(select_rounds):
        remaining = c
        level = 0
        while remaining > 1:
            committees = max(1, _ceil_div(remaining, fanout))
            width = min(fanout, remaining)
            work = Work(
                mpc_setup=1.0,
                mpc_comparisons=float(width - 1) if width > 1 else 1.0,
                mpc_triples=2.0 * max(width - 1, 1),
                mpc_rounds=2.0,
                vsr_elements_received=float(width) * 2.0,
                vsr_elements_sent=2.0,
            )
            group = state.new_group(f"argmax-r{r}-l{level}")
            vignettes.append(
                Vignette(
                    "em-argmax",
                    Location.COMMITTEE,
                    "mpc",
                    work,
                    instances=float(committees),
                    committee_group=group,
                    committee_type="operations",
                )
            )
            remaining = committees
            level += 1
    state.shared = True


def _emit_noise_output(
    vignettes: List[Vignette],
    state: _BuildState,
    choice: Choice,
    op: NoiseOutput,
) -> None:
    batch = choice.params[0]
    count = max(op.count, 1)
    _emit_decryption_layer(vignettes, state, count, max(batch * 8, 512))
    committees = max(1, _ceil_div(count, batch))
    per_committee = min(batch, count)
    work = Work(
        mpc_setup=1.0,
        mpc_noise_samples=float(per_committee),
        mpc_rounds=3.0,
        vsr_elements_received=float(per_committee),
        payload_bytes_sent=64.0 * per_committee,
    )
    group = state.new_group("laplace")
    vignettes.append(
        Vignette(
            "noise-output",
            Location.COMMITTEE,
            "mpc",
            work,
            instances=float(committees),
            committee_group=group,
            committee_type="operations",
        )
    )


# --------------------------------------------------------------------------
# Incremental prefix expansion (branch-and-bound fast path)
# --------------------------------------------------------------------------


class ExpansionNode:
    """One search node: a choice prefix plus everything needed to extend
    or score it without re-instantiating from scratch.

    ``vignettes`` holds the base + emitted pipeline vignettes *without*
    the keygen vignette (whose work depends on the still-growing number of
    decryption groups); scoring folds a per-bucket keygen in at index 1,
    exactly where :func:`instantiate` inserts it.
    """

    __slots__ = (
        "depth",
        "choices",
        "bins",
        "use_fhe",
        "scheme",
        "cts",
        "encrypted",
        "shared",
        "dec_groups",
        "group_counter",
        "fused",
        "vignettes",
        "count_groups",
        "params",
        "bucket",
        "accum",
        "parent",
        "segment",
        "_cost",
        "refolds",
    )

    def __init__(
        self,
        depth,
        choices,
        bins,
        use_fhe,
        scheme,
        cts,
        encrypted,
        shared,
        dec_groups,
        group_counter,
        fused,
        vignettes,
        count_groups,
        params,
        bucket,
        accum,
        parent=None,
        segment=None,
    ):
        self.depth = depth
        self.choices = choices
        self.bins = bins
        self.use_fhe = use_fhe
        self.scheme = scheme
        self.cts = cts
        self.encrypted = encrypted
        self.shared = shared
        self.dec_groups = dec_groups
        self.group_counter = group_counter
        self.fused = fused
        self.vignettes = vignettes
        self.count_groups = count_groups
        self.params = params
        self.bucket = bucket
        self.accum = accum
        self.parent = parent
        self.segment = segment
        self._cost = None
        self.refolds = None

    @property
    def cost(self):
        cost = self._cost
        if cost is None:
            cost = self._cost = self.accum.cost()
        return cost


class PrefixExpander:
    """Resumable instantiation: extend a parent node by one op's choice.

    Produces bit-identical vignettes and scores to running
    :func:`instantiate` + :func:`score_vignettes` on the full prefix,
    but with O(1) amortized work per node:

    * per-(op, choice, entry-state) emissions are cached — the entry state
      is ``(bins, use_fhe, encrypted, shared, group_counter, fused)``, the
      only fields emitters read (group names embed ``group_counter``);
    * the running :class:`ScoreAccumulator` is extended by the new
      segment only; when the committee size m or the keygen-work bucket
      changes, the full sequence is re-folded from the stored vignettes;
    * the two scheme-selection inputs (``bins``, ``use_fhe``) are monotone
      along a prefix, so a choice that flips them rebuilds the prefix
      once from a cached per-scheme root by replaying the recorded
      choices (each replay step usually hits the emission cache).

    Expansion failures are cached too: an illegal (op, choice, state)
    combination raises the same :class:`ExpansionError` on every repeat.
    """

    def __init__(
        self,
        plan: LogicalPlan,
        model: CostModel,
        device: DeviceProfile = REFERENCE_SERVER,
    ):
        self.plan = plan
        self.model = model
        self.device = device
        self.n = plan.env.num_participants
        self.ops = plan.ops
        self._roots = {}
        self._keygens = {}
        self._segments = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------- roots

    def root(self) -> ExpansionNode:
        return self._root(1, False)

    def _root(self, bins: int, use_fhe: bool) -> ExpansionNode:
        node = self._roots.get((bins, use_fhe))
        if node is not None:
            return node
        packed = max(self.plan.env.row_width, 1) * bins
        scheme = (
            fhe_params_for(packed, depth=6) if use_fhe else ahe_params_for(packed)
        )
        cts = max(1, _ceil_div(packed, scheme.slots))
        base = _base_vignettes(scheme, packed, cts, self.n, self.model.constants)
        keygen = _keygen_vignette(scheme, 1)
        params = CommitteeParameters.for_plan(1)
        accum = ScoreAccumulator(
            self.n, self.model, self.device, params.committee_size
        )
        accum.add(base[0])
        accum.add(keygen)
        for v in base[1:]:
            accum.add(v)
        node = ExpansionNode(
            depth=0,
            choices=(),
            bins=bins,
            use_fhe=use_fhe,
            scheme=scheme,
            cts=cts,
            encrypted=False,
            shared=False,
            dec_groups=0,
            group_counter=0,
            fused=None,
            vignettes=tuple(base),
            count_groups={"keygen": 1.0},
            params=params,
            bucket=1,
            accum=accum,
        )
        self._roots[(bins, use_fhe)] = node
        self._keygens[(bins, use_fhe, 1)] = keygen
        return node

    def _keygen(self, bins: int, use_fhe: bool, bucket: int) -> Vignette:
        key = (bins, use_fhe, bucket)
        v = self._keygens.get(key)
        if v is None:
            scheme = self._root(bins, use_fhe).scheme
            v = self._keygens[key] = _keygen_vignette(scheme, bucket)
        return v

    # --------------------------------------------------------- extension

    def extend(self, node: ExpansionNode, choice: Choice) -> ExpansionNode:
        """The child node for ``choice`` at ``node``'s next op.

        Raises :class:`ExpansionError` if the choice is structurally
        illegal in the node's state (same condition as ``instantiate`` on
        the full prefix).
        """
        op = self.ops[node.depth]
        bins, use_fhe = node.bins, node.use_fhe
        if isinstance(op, EncryptInput):
            if choice.option == "binned_upload":
                bins = choice.params[0]
        elif isinstance(op, VectorTransform):
            if choice.option == "aggregator_fhe":
                use_fhe = True
        elif isinstance(op, SelectMax):
            if choice.option == "expo_fhe":
                use_fhe = True
        if bins != node.bins or use_fhe != node.use_fhe:
            # Scheme flip: every prior vignette changes (ciphertext sizes,
            # slot counts), so rebuild the prefix under the new scheme by
            # replaying the recorded choices from the cached new root.
            replacement = self._root(bins, use_fhe)
            for prior in node.choices:
                replacement = self._extend(replacement, prior)
            node = replacement
        return self._extend(node, choice)

    def _extend(self, node: ExpansionNode, choice: Choice) -> ExpansionNode:
        key = (
            node.depth,
            choice,
            node.bins,
            node.use_fhe,
            node.encrypted,
            node.shared,
            node.group_counter,
            node.fused,
        )
        entry = self._segments.get(key)
        if entry is None:
            self.cache_misses += 1
            state = _BuildState(
                scheme=node.scheme,
                cts_per_participant=node.cts,
                encrypted=node.encrypted,
                shared=node.shared,
                dec_groups=0,
                group_counter=node.group_counter,
                fused_transform=node.fused,
            )
            segment: List[Vignette] = []
            try:
                _emit_pipeline_op(segment, state, self.ops[node.depth], choice, self.n)
            except ExpansionError as exc:
                self._segments[key] = (None, exc)
                raise
            seg_groups = tuple(
                (v.committee_group, v.instances)
                for v in segment
                if v.location is Location.COMMITTEE
            )
            entry = (
                (
                    tuple(segment),
                    state.encrypted,
                    state.shared,
                    state.dec_groups,  # delta: emitters only increment it
                    state.group_counter,
                    state.fused_transform,
                    seg_groups,
                ),
                None,
            )
            self._segments[key] = entry
        else:
            self.cache_hits += 1
            if entry[1] is not None:
                raise entry[1]
        (
            segment,
            encrypted,
            shared,
            dec_delta,
            group_counter,
            fused,
            seg_groups,
        ) = entry[0]

        dec_groups = node.dec_groups + dec_delta
        bucket = 1 if dec_groups <= 1 else 2
        count_groups = node.count_groups
        if seg_groups:
            count_groups = dict(count_groups)
            for group, instances in seg_groups:
                if instances > count_groups.get(group, 0.0):
                    count_groups[group] = instances
        # Mirrors count_committees + CommitteeParameters.for_plan on the
        # child's full vignette list (keygen included via the root).
        params = CommitteeParameters.for_plan(
            max(int(sum(count_groups.values())), 1)
        )
        m = params.committee_size
        accum = self._node_fold(node, m, bucket).extended(segment)
        return ExpansionNode(
            depth=node.depth + 1,
            choices=node.choices + (choice,),
            bins=node.bins,
            use_fhe=node.use_fhe,
            scheme=node.scheme,
            cts=node.cts,
            encrypted=encrypted,
            shared=shared,
            dec_groups=dec_groups,
            group_counter=group_counter,
            fused=fused,
            vignettes=node.vignettes + segment,
            count_groups=count_groups,
            params=params,
            bucket=bucket,
            accum=accum,
            parent=node,
            segment=segment,
        )

    def _node_fold(self, node, m: int, bucket: int) -> ScoreAccumulator:
        """``node``'s full prefix fold at committee size ``m`` with the
        ``bucket`` keygen vignette at index 1.

        When (m, bucket) match the node's own accumulator this is free;
        otherwise the fold is built from the parent's fold at the same
        (m, bucket) plus the node's segment — so a committee-size change
        costs one segment fold per ancestor on first use, and the results
        are memoized per node for every sibling and descendant after that.
        Fold order is exactly score_vignettes order at every step, which
        keeps the float sums bit-identical to a from-scratch fold.
        """
        accum = node.accum
        if m == accum.m and bucket == node.bucket:
            return accum
        refolds = node.refolds
        if refolds is not None:
            cached = refolds.get((m, bucket))
            if cached is not None:
                return cached
        parent = node.parent
        if parent is None:
            fold = ScoreAccumulator(self.n, self.model, self.device, m)
            vignettes = node.vignettes
            fold.add(vignettes[0])
            fold.add(self._keygen(node.bins, node.use_fhe, bucket))
            for v in vignettes[1:]:
                fold.add(v)
        else:
            fold = self._node_fold(parent, m, bucket).extended(node.segment)
        if refolds is None:
            refolds = node.refolds = {}
        refolds[(m, bucket)] = fold
        return fold

    # -------------------------------------------------------------- leaves

    def leaf_vignettes(self, node: ExpansionNode) -> List[Vignette]:
        """The full vignette list for a complete prefix, matching
        ``instantiate(plan, node.choices, model)`` byte for byte."""
        vignettes = list(node.vignettes)
        vignettes.insert(1, _keygen_vignette(node.scheme, node.dec_groups))
        return vignettes

    def leaf_score(self, node: ExpansionNode):
        """The PlanScore for a complete prefix (no rescoring needed: the
        node's accumulator already folded every vignette)."""
        return node.accum.finish(node.params)
