"""Logical operator IR and AST lowering (§4.3).

The planner does not search over raw statements; it first lowers the
certified program into a pipeline of *logical operators* — encrypt-input,
aggregate, vector transform, noise, select-max (the em), output — each of
which can be instantiated in several concrete ways (§4.3: a sum can be a
flat aggregator loop or a tree of some fanout; the em can use explicit
exponentiation in FHE or Gumbel noise in MPC; a transform can run
homomorphically on the aggregator or in committee MPC). The statements
between recognized operators are folded into VectorTransform/Postprocess
ops whose operation counts (linear vs. nonlinear) decide which
instantiations are legal and what they cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.types import QueryEnvironment, TypeChecker
from ..lang.ast import (
    Assign,
    BinOp,
    Call,
    Expr,
    ExprStmt,
    For,
    If,
    IndexAssign,
    Program,
    Stmt,
    UnOp,
    Var,
    DB_NAME,
    walk_expr,
)
from ..privacy.certify import Certificate


class LoweringError(Exception):
    """Raised when a program does not fit the supported operator pipeline."""


# --------------------------------------------------------------- logical ops


@dataclass
class LogicalOp:
    """Base class; ``name`` identifies the op in plans and diagnostics."""

    name: str = field(init=False, default="op")


@dataclass
class EncryptInput(LogicalOp):
    """Participants encrypt and upload their (one-hot or bounded) rows.

    ``sample_bins`` > 1 activates the oblivious bin-sampling layout of §6:
    each participant places its row into one of ``sample_bins`` slot groups,
    multiplying the packed width by that factor.
    """

    categories: int
    statement_kind: str = "one_hot"  # or "range"
    sample_bins: int = 1
    sample_fraction: float = 1.0

    def __post_init__(self):
        self.name = "input"

    @property
    def packed_width(self) -> int:
        return self.categories * self.sample_bins


@dataclass
class Aggregate(LogicalOp):
    """Sum the N encrypted uploads into one aggregate vector (length C)."""

    categories: int
    num_participants: int

    def __post_init__(self):
        self.name = "aggregate"


@dataclass
class VectorTransform(LogicalOp):
    """A block of per-element arithmetic over the (encrypted) aggregate.

    ``linear_ops`` counts additions/subtractions/scalings, which AHE can
    absorb; ``nonlinear_ops`` counts comparisons, abs, multiplications of
    two secrets, exponentials — anything that forces FHE or MPC.
    """

    length: int
    linear_ops: int = 0
    nonlinear_ops: int = 0

    def __post_init__(self):
        self.name = "transform"

    @property
    def total_ops(self) -> int:
        return self.linear_ops + self.nonlinear_ops


@dataclass
class SelectMax(LogicalOp):
    """The exponential mechanism: select the best of C categories, k times.

    ``with_gap`` additionally releases the noisy winner-runner-up gap [28];
    ``release_value`` additionally releases the noisy maximum itself (used
    by the unbounded-auction query).
    """

    categories: int
    k: int = 1
    with_gap: bool = False
    release_value: bool = False

    def __post_init__(self):
        self.name = "select_max"


@dataclass
class NoiseOutput(LogicalOp):
    """Laplace-noise one or more aggregate values and release them."""

    count: int  # number of released scalars

    def __post_init__(self):
        self.name = "noise_output"


@dataclass
class Postprocess(LogicalOp):
    """Cleartext postprocessing of already-released values (aggregator)."""

    scalar_ops: int

    def __post_init__(self):
        self.name = "postprocess"


@dataclass
class Output(LogicalOp):
    """Publish the final result to the analyst."""

    values: int = 1

    def __post_init__(self):
        self.name = "output"


@dataclass
class LogicalPlan:
    """The lowered pipeline plus everything scoring and execution need.

    ``aggregate_var`` names the variable holding ``sum(db)`` and
    ``post_statements`` are the top-level statements after that assignment;
    the runtime's committee interpreter executes them over secret-shared
    values (the vignette structure governs *where*, these govern *what*).
    """

    query_name: str
    ops: List[LogicalOp]
    env: QueryEnvironment
    certificate: Certificate
    aggregate_var: Optional[str] = None
    post_statements: List[Stmt] = field(default_factory=list)
    sample_fraction: float = 1.0

    @property
    def categories(self) -> int:
        return self.env.row_width


# ------------------------------------------------------------------ lowering


def _expr_uses(expr: Expr, names: set) -> bool:
    return any(isinstance(e, Var) and e.name in names for e in walk_expr(expr))


def _calls_in_expr(expr: Expr) -> List[Call]:
    return [e for e in walk_expr(expr) if isinstance(e, Call)]


_NONLINEAR_FUNCS = {"exp", "log", "sqrt", "abs", "random"}
_COMPARISON_OPS = {"<", "<=", ">", ">=", "==", "!=", "&&", "||"}


def _count_ops(expr: Expr, sensitive: set) -> Tuple[int, int]:
    """(linear, nonlinear) op counts of one expression over sensitive data."""
    linear = 0
    nonlinear = 0
    for e in walk_expr(expr):
        if isinstance(e, BinOp):
            touches_secret = _expr_uses(e.left, sensitive) or _expr_uses(e.right, sensitive)
            if not touches_secret:
                continue
            if e.op in _COMPARISON_OPS:
                nonlinear += 1
            elif e.op == "*":
                if _expr_uses(e.left, sensitive) and _expr_uses(e.right, sensitive):
                    nonlinear += 1
                else:
                    linear += 1
            elif e.op == "/":
                nonlinear += 1
            else:
                linear += 1
        elif isinstance(e, UnOp):
            if _expr_uses(e.operand, sensitive):
                if e.op == "!":
                    nonlinear += 1
                else:
                    linear += 1
        elif isinstance(e, Call) and e.func in _NONLINEAR_FUNCS:
            if any(_expr_uses(a, sensitive) for a in e.args):
                nonlinear += 1
    return linear, nonlinear


class _Lowerer:
    """Walks the statement list and emits the logical operator pipeline."""

    def __init__(self, program: Program, env: QueryEnvironment, cert: Certificate, name: str):
        self.program = program
        self.env = env
        self.cert = cert
        self.name = name
        self.checker: TypeChecker = cert.checker
        self.ops: List[LogicalOp] = []
        #: Variables currently holding sensitive (pre-mechanism) data.
        self.sensitive = {DB_NAME}
        #: Variables holding released (post-mechanism) data.
        self.released = set()
        self.sample_fraction = 1.0
        self.sampled_names = set()
        self._pending_transform: Optional[VectorTransform] = None
        self._outputs = 0

    # ------------------------------------------------------------- plumbing

    def _vector_length(self, expr: Expr) -> int:
        vt = self.checker.expr_types.get(id(expr))
        if vt is not None and vt.shape:
            return vt.shape[0]
        return self.env.row_width

    def _flush_transform(self) -> None:
        if self._pending_transform and self._pending_transform.total_ops > 0:
            self.ops.append(self._pending_transform)
        self._pending_transform = None

    def _add_transform_ops(self, linear: int, nonlinear: int, length: int) -> None:
        if self._pending_transform is None:
            self._pending_transform = VectorTransform(length)
        t = self._pending_transform
        t.linear_ops += linear
        t.nonlinear_ops += nonlinear
        t.length = max(t.length, length)

    # ------------------------------------------------------------ statements

    def lower(self) -> LogicalPlan:
        self._lower_block(self.program.statements, multiplier=1)
        self._flush_transform()
        if self._outputs:
            self.ops.append(Output(self._outputs))
        self._validate()
        aggregate_var, post = self._split_at_aggregate()
        return LogicalPlan(
            self.name,
            self.ops,
            self.env,
            self.cert,
            aggregate_var=aggregate_var,
            post_statements=post,
            sample_fraction=self.sample_fraction,
        )

    def _split_at_aggregate(self) -> Tuple[Optional[str], List[Stmt]]:
        """Find the top-level ``x = sum(db-ish)`` and the statements after it."""
        sources = {DB_NAME} | self.sampled_names
        for i, stmt in enumerate(self.program.statements):
            if isinstance(stmt, Assign):
                for call in _calls_in_expr(stmt.value):
                    if call.func == "sum" and call.args and _expr_uses(
                        call.args[0], sources
                    ):
                        return stmt.var, list(self.program.statements[i + 1 :])
                    if call.func == "sum" and call.args and isinstance(
                        call.args[0], Var
                    ) and call.args[0].name in sources:
                        return stmt.var, list(self.program.statements[i + 1 :])
        return None, []

    def _lower_block(self, statements: List[Stmt], multiplier: int) -> None:
        for stmt in statements:
            self._lower_statement(stmt, multiplier)

    def _trip_count(self, stmt: For) -> int:
        start = self.checker.expr_types.get(id(stmt.start))
        end = self.checker.expr_types.get(id(stmt.end))
        if start is None or end is None:
            return 1
        return max(
            0,
            int(math.ceil(end.interval.hi)) - int(math.floor(start.interval.lo)) + 1,
        )

    def _lower_statement(self, stmt: Stmt, multiplier: int) -> None:
        if isinstance(stmt, For):
            trips = self._trip_count(stmt)
            self._lower_block(stmt.body, multiplier * max(trips, 1))
            return
        if isinstance(stmt, If):
            linear, nonlinear = _count_ops(stmt.cond, self.sensitive)
            if linear or nonlinear:
                self._add_transform_ops(
                    (linear + 1) * multiplier, nonlinear * multiplier, 1
                )
            self._lower_block(stmt.then_body, multiplier)
            self._lower_block(stmt.else_body, multiplier)
            return
        for expr in self._statement_exprs(stmt):
            self._lower_expr_stmt(stmt, expr, multiplier)

    def _statement_exprs(self, stmt: Stmt) -> List[Expr]:
        if isinstance(stmt, Assign):
            return [stmt.value]
        if isinstance(stmt, IndexAssign):
            return [stmt.value]
        if isinstance(stmt, ExprStmt):
            return [stmt.expr]
        return []

    def _target_of(self, stmt: Stmt) -> Optional[str]:
        if isinstance(stmt, (Assign, IndexAssign)):
            return stmt.var
        return None

    def _lower_expr_stmt(self, stmt: Stmt, expr: Expr, multiplier: int) -> None:
        target = self._target_of(stmt)
        calls = _calls_in_expr(expr)
        handled = False
        for call in calls:
            if call.func == "sampleUniform":
                phi_type = self.checker.expr_types.get(id(call.args[1]))
                self.sample_fraction = phi_type.interval.hi if phi_type else 1.0
                if target:
                    self.sampled_names.add(target)
                    self.sensitive.add(target)
                handled = True
            elif call.func == "sum" and self._is_db_sum(call):
                self._flush_transform()
                self.ops.append(
                    EncryptInput(
                        categories=self.env.row_width,
                        statement_kind=self.env.row_encoding
                        if self.env.row_encoding == "one_hot"
                        else "range",
                        sample_bins=1,
                        sample_fraction=self.sample_fraction,
                    )
                )
                self.ops.append(
                    Aggregate(self.env.row_width, self.env.num_participants)
                )
                if target:
                    self.sensitive.add(target)
                handled = True
            elif call.func == "em":
                self._flush_transform()
                k = 1
                if len(call.args) == 2:
                    kt = self.checker.expr_types.get(id(call.args[1]))
                    k = int(kt.interval.hi) if kt else 1
                length = self._vector_length(call.args[0])
                self.ops.append(SelectMax(length, k=max(k, 1)))
                if target:
                    self.released.add(target)
                    self.sensitive.discard(target)
                handled = True
            elif call.func == "laplace":
                self._flush_transform()
                vt = self.checker.expr_types.get(id(call.args[0]))
                count = vt.shape[0] if (vt and vt.shape) else 1
                self.ops.append(NoiseOutput(count * multiplier))
                if target:
                    self.released.add(target)
                    self.sensitive.discard(target)
                handled = True
            elif call.func == "output":
                self._outputs += 1
                handled = True
        if handled:
            return
        # Plain arithmetic statement: transform if it touches secrets,
        # postprocess otherwise.
        linear, nonlinear = _count_ops(expr, self.sensitive)
        if linear or nonlinear or self._reads_sensitive(expr):
            length = self._vector_length(expr)
            self._add_transform_ops(
                max(linear, 1) * multiplier, nonlinear * multiplier, length
            )
            if target:
                self.sensitive.add(target)
        else:
            if target and self._reads_released(expr):
                self.released.add(target)

    def _reads_sensitive(self, expr: Expr) -> bool:
        return _expr_uses(expr, self.sensitive)

    def _reads_released(self, expr: Expr) -> bool:
        return _expr_uses(expr, self.released)

    def _is_db_sum(self, call: Call) -> bool:
        arg = call.args[0] if call.args else None
        if arg is None:
            return False
        if isinstance(arg, Var):
            return arg.name == DB_NAME or arg.name in self.sampled_names
        return _expr_uses(arg, {DB_NAME} | self.sampled_names)

    # ------------------------------------------------------------ validation

    def _validate(self) -> None:
        if not any(isinstance(op, EncryptInput) for op in self.ops):
            raise LoweringError(
                "query never aggregates the input database; nothing to plan"
            )
        if not any(isinstance(op, Output) for op in self.ops):
            raise LoweringError("query produces no output")
        if not any(isinstance(op, (SelectMax, NoiseOutput)) for op in self.ops):
            raise LoweringError("query releases nothing through a DP mechanism")
        # The oblivious bin-sampling layout is attached to the input op.
        if self.sample_fraction < 1.0:
            for op in self.ops:
                if isinstance(op, EncryptInput):
                    op.sample_fraction = self.sample_fraction


def lower(program: Program, env: QueryEnvironment, certificate: Certificate, name: str = "query") -> LogicalPlan:
    """Lower a certified program to the logical operator pipeline."""
    return _Lowerer(program, env, certificate, name).lower()
