"""Arboretum's query planner (§4): operator expansion, vignette assignment,
encryption-type inference, committee sizing, cost model, and the
branch-and-bound search."""

from .committees import CommitteeParameters, minimum_committee_size
from .costmodel import (
    Constraints,
    CostModel,
    CostVector,
    DeviceProfile,
    Goal,
    PARTICIPANT_DEVICE,
    REFERENCE_SERVER,
)
from .ir import LogicalPlan, LoweringError, lower
from .plan import Location, Plan, Vignette, score_vignettes
from .search import (
    Planner,
    PlannerOutOfMemory,
    PlannerStatistics,
    PlanningFailed,
    PlanningResult,
    plan_query,
)

__all__ = [
    "CommitteeParameters",
    "minimum_committee_size",
    "Constraints",
    "CostModel",
    "CostVector",
    "Goal",
    "DeviceProfile",
    "PARTICIPANT_DEVICE",
    "REFERENCE_SERVER",
    "LogicalPlan",
    "LoweringError",
    "lower",
    "Location",
    "Plan",
    "Vignette",
    "score_vignettes",
    "Planner",
    "PlanningResult",
    "PlanningFailed",
    "PlannerOutOfMemory",
    "PlannerStatistics",
    "plan_query",
]
