"""The evaluation queries from Table 2, plus extensions (quantiles, range
counts, count-mean sketches)."""

from .catalog import ALL_QUERIES, BY_NAME, LEGACY_SYSTEMS, QuerySpec, get
from .extensions import quantile_query, range_count_query
from .sketches import CountMeanSketch, SketchParams

__all__ = [
    "ALL_QUERIES",
    "BY_NAME",
    "LEGACY_SYSTEMS",
    "QuerySpec",
    "get",
    "quantile_query",
    "range_count_query",
    "CountMeanSketch",
    "SketchParams",
]
