"""Count-mean sketch: the data structure behind the ``cms`` query.

Honeycrisp's workload (and Apple's telemetry pipeline it models) is not a
plain counter: each device hashes its item into one row of a k x m sketch
matrix, the aggregator sums the per-device matrices homomorphically, noise
is added once, and the analyst estimates any item's frequency by averaging
its k cells (debiased for hash collisions). This module implements the
sketch — client encoding, aggregation, DP noising, and estimation — so the
cms pipeline can run over a realistic domain that is far larger than the
sketch itself.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..privacy.mechanisms import laplace_sample


def _cell(item: str, row: int, width: int) -> int:
    digest = hashlib.sha256(f"{row}:{item}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % width


@dataclass(frozen=True)
class SketchParams:
    """Sketch geometry: k hash rows of m cells each."""

    depth: int = 4  # k
    width: int = 256  # m

    def __post_init__(self):
        if self.depth < 1 or self.width < 2:
            raise ValueError("sketch needs depth >= 1 and width >= 2")

    @property
    def cells(self) -> int:
        return self.depth * self.width


def encode_row(item: str, params: SketchParams) -> List[int]:
    """The flattened 0/1 vector a device uploads: one cell set per row.

    This is exactly the ``db`` row of the cms query — a bounded vector the
    input ZKP range-checks — with ``params.cells`` entries of which
    ``depth`` are 1.
    """
    row = [0] * params.cells
    for r in range(params.depth):
        row[r * params.width + _cell(item, r, params.width)] = 1
    return row


def aggregate_rows(rows: Sequence[Sequence[int]], params: SketchParams) -> List[int]:
    """Cell-wise sum of device uploads (the aggregator's homomorphic sum)."""
    totals = [0] * params.cells
    for row in rows:
        if len(row) != params.cells:
            raise ValueError("row does not match the sketch geometry")
        for i, v in enumerate(row):
            totals[i] += v
    return totals


def noise_sketch(
    totals: Sequence[int],
    epsilon: float,
    params: SketchParams,
    rng: random.Random,
) -> List[float]:
    """Add Laplace noise for (epsilon, 0)-DP.

    A device sets exactly ``depth`` cells, so the sketch's L1 sensitivity
    is ``depth``; each cell gets Lap(depth/epsilon).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    scale = params.depth / epsilon
    return [v + laplace_sample(scale, rng) for v in totals]


@dataclass
class CountMeanSketch:
    """The analyst-side estimator over a (noised) aggregated sketch."""

    params: SketchParams
    cells: List[float]
    total_devices: int

    def estimate(self, item: str) -> float:
        """Debiased count-mean estimate of one item's frequency.

        Each of the item's k cells holds its true count plus ~N/m worth of
        colliding mass; the standard debiasing is
        (mean_cell - N/m) / (1 - 1/m).
        """
        params = self.params
        mean = (
            sum(
                self.cells[r * params.width + _cell(item, r, params.width)]
                for r in range(params.depth)
            )
            / params.depth
        )
        expected_collisions = self.total_devices / params.width
        return (mean - expected_collisions) / (1.0 - 1.0 / params.width)

    def heavy_hitters(
        self, candidates: Sequence[str], threshold: float
    ) -> Dict[str, float]:
        """Candidate items whose estimated frequency exceeds the threshold."""
        out = {}
        for item in candidates:
            estimate = self.estimate(item)
            if estimate >= threshold:
                out[item] = estimate
        return out


def build_sketch(
    items: Sequence[str],
    params: SketchParams,
    epsilon: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> CountMeanSketch:
    """Full centralized pipeline: encode, aggregate, optionally noise.

    (The federated pipeline runs the same encode/aggregate steps through
    the executor — see tests — with the ZKP range statements guarding the
    uploads; this helper is the reference and the analyst-side tool.)
    """
    rows = [encode_row(item, params) for item in items]
    totals = aggregate_rows(rows, params)
    if epsilon is not None:
        cells = noise_sketch(totals, epsilon, params, rng or random.Random())
    else:
        cells = [float(v) for v in totals]
    return CountMeanSketch(params, cells, len(items))


def sketch_query_source(params: SketchParams) -> str:
    """The cms query over a real sketch, as a vector Laplace release.

    A device's row sets exactly ``depth`` cells, so the sketch vector's L1
    sensitivity is 2*depth (a changed item clears k cells and sets k
    others); noising every cell at scale 2*depth/epsilon makes the joint
    release epsilon-DP. The certifier verifies this from the environment's
    ZKP-enforced ``row_l1`` promise.
    """
    return f"""
aggr = sum(db);
noisy = laplace(aggr, 2 * {params.depth} * sens / epsilon);
c = len(noisy);
for i = 0 to c - 1 do
  output(noisy[i]);
endfor
"""


def sketch_environment(
    params: SketchParams, num_participants: int, epsilon: float = 1.0
):
    """The QueryEnvironment for the sketch query (row_l1 = depth)."""
    from ..analysis.types import QueryEnvironment

    return QueryEnvironment(
        num_participants=num_participants,
        row_width=params.cells,
        epsilon=epsilon,
        sensitivity=1.0,
        row_encoding="bounded",
        row_l1=float(params.depth),
    )
