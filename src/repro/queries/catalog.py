"""The ten evaluation queries (Table 2), written in Arboretum's language.

The first six are the *new* queries (the first five use the exponential
mechanism, the sixth uses secrecy of the sample); the remaining four are
adapted from earlier systems: ``cms`` from Honeycrisp, ``bayes`` and
``k-medians`` from Orchard, and ``median`` from Böhler and Kerschbaum.
Each entry carries the source text, the paper's evaluation parameters
(§7.1: C=1 for hypotest/cms, C=10 for k-medians, C=115 for bayes, C=2^15
otherwise; k=5 for topK), and a scaled-down environment for the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.ranges import Interval
from ..analysis.types import QueryEnvironment, ValueType

#: Paper-scale deployment defaults (§7.1).
PAPER_N = 10**9
PAPER_EPSILON = 0.1


@dataclass(frozen=True)
class QuerySpec:
    """One catalog entry."""

    name: str
    action: str
    source_paper: str
    source: str
    categories: int
    row_encoding: str = "one_hot"
    sensitivity: float = 1.0
    uses_em: bool = True
    paper_lines: int = 0
    #: Extra predefined constants visible to the program.
    constants: Optional[Dict[str, float]] = None

    @property
    def lines(self) -> int:
        """Line count of our formulation (the Table 2 'Lines' column)."""
        return sum(1 for l in self.source.strip().splitlines() if l.strip())

    def environment(
        self,
        num_participants: int = PAPER_N,
        categories: Optional[int] = None,
        epsilon: float = PAPER_EPSILON,
    ) -> QueryEnvironment:
        c = categories if categories is not None else self.categories
        sensitivity = self.sensitivity if self.sensitivity != -1 else float(c)
        element = ValueType("int", Interval(0.0, 1.0))
        if self.row_encoding == "bounded":
            element = ValueType("int", Interval(0.0, 1.0))
        return QueryEnvironment(
            num_participants=num_participants,
            row_width=c,
            db_element=element,
            epsilon=epsilon,
            sensitivity=sensitivity,
            row_encoding=self.row_encoding,
            constants=dict(self.constants or {}),
        )

    def runtime_environment(
        self, num_participants: int = 48, categories: int = 8, epsilon: float = 1.0
    ) -> QueryEnvironment:
        """A small-scale environment for functional execution."""
        return self.environment(num_participants, categories, epsilon)


TOP1 = QuerySpec(
    name="top1",
    action="Most frequent item",
    source_paper="[31]",
    paper_lines=3,
    categories=2**15,
    source="""
aggr = sum(db);
result = em(aggr);
output(result);
""",
)

TOPK = QuerySpec(
    name="topK",
    action="Top-K selection",
    source_paper="[29]",
    paper_lines=8,
    categories=2**15,
    source="""
aggr = sum(db);
k = 5;
winners = em(aggr, 5);
for i = 0 to 4 do
  output(winners[i]);
endfor
""",
)

GAP = QuerySpec(
    name="gap",
    action="Exp. mechanism with gap",
    source_paper="[28]",
    paper_lines=8,
    categories=2**15,
    source="""
aggr = sum(db);
winner = em(aggr);
j = 0;
for i = 0 to len(aggr) - 1 do
  if !(i == winner) then
    rest[j] = aggr[i];
    j = j + 1;
  endif
endfor
gap = laplace(aggr[winner] - max(rest), 2 * sens / epsilon);
output(winner);
output(gap);
""",
)

AUCTION = QuerySpec(
    name="auction",
    action="Unbounded auction",
    source_paper="[45]",
    paper_lines=7,
    categories=2**15,
    sensitivity=-1,  # quality-score sensitivity equals the highest price
    source="""
aggr = sum(db);
c = len(aggr);
acc = 0;
for i = 0 to c - 1 do
  acc = acc + aggr[c - 1 - i];
  rev[c - 1 - i] = acc * (c - i);
endfor
result = em(rev);
output(result);
""",
)

HYPOTEST = QuerySpec(
    name="hypotest",
    action="Hypothesis testing",
    source_paper="[20]",
    paper_lines=12,
    categories=1,
    uses_em=False,
    source="""
aggr = sum(db);
count = aggr[0];
noisy = laplace(count, sens / epsilon);
threshold = N / 2;
reject = 0;
if noisy > threshold then
  reject = 1;
endif
output(reject);
output(noisy);
""",
)

SECRECY = QuerySpec(
    name="secrecy",
    action="Secrecy of sample",
    source_paper="[9]",
    paper_lines=16,
    categories=2**15,
    source="""
sampled = sampleUniform(db, 0.05);
aggr = sum(sampled);
result = em(aggr);
output(result);
""",
)

MEDIAN = QuerySpec(
    name="median",
    action="Median",
    source_paper="[14]",
    paper_lines=39,
    categories=2**15,
    sensitivity=2.0,  # rank distances are computed in doubled units
    source="""
aggr = sum(db);
c = len(aggr);
cum = 0;
for i = 0 to c - 1 do
  lowdist = N + 1 - 2 * (cum + aggr[i]);
  highdist = 2 * cum - (N + 1);
  low = clip(lowdist, 0, 2 * N);
  high = clip(highdist, 0, 2 * N);
  scores[i] = 0 - low - high;
  cum = cum + aggr[i];
endfor
result = em(scores);
output(result);
""",
)

CMS = QuerySpec(
    name="cms",
    action="Count-mean sketch",
    source_paper="[53]",
    paper_lines=5,
    categories=1,
    row_encoding="bounded",
    uses_em=False,
    source="""
aggr = sum(db);
noisy = laplace(aggr[0], sens / epsilon);
output(noisy);
""",
)

BAYES = QuerySpec(
    name="bayes",
    action="Naive Bayes",
    source_paper="[54]",
    paper_lines=16,
    categories=115,
    row_encoding="bounded",
    uses_em=False,
    source="""
aggr = sum(db);
c = len(aggr);
for i = 0 to c - 1 do
  noisy[i] = laplace(aggr[i], c * sens / epsilon);
endfor
for i = 0 to c - 1 do
  output(noisy[i]);
endfor
""",
)

KMEDIANS = QuerySpec(
    name="k-medians",
    action="K-Medians",
    source_paper="[54]",
    paper_lines=30,
    categories=20,  # 10 centers: one count and one coordinate sum each
    row_encoding="bounded",
    uses_em=False,
    constants={"k": 10},
    source="""
aggr = sum(db);
for i = 0 to k - 1 do
  cnt = clip(aggr[i], 1, N);
  coordsum = aggr[k + i];
  noisycnt = laplace(cnt, 2 * k * sens / epsilon);
  noisysum = laplace(coordsum, 2 * k * sens / epsilon);
  den = clip(noisycnt, 1, N);
  center = noisysum / den;
  output(center);
endfor
""",
)

ALL_QUERIES = (
    TOP1,
    TOPK,
    GAP,
    AUCTION,
    HYPOTEST,
    SECRECY,
    MEDIAN,
    CMS,
    BAYES,
    KMEDIANS,
)

BY_NAME: Dict[str, QuerySpec] = {q.name: q for q in ALL_QUERIES}

#: The queries adapted from earlier systems, with their origin (used by the
#: Fig 6-8 comparison bars).
LEGACY_SYSTEMS: Dict[str, str] = {
    "cms": "Honeycrisp",
    "bayes": "Orchard",
    "k-medians": "Orchard",
    "median": "Böhler",
}


def get(name: str) -> QuerySpec:
    if name not in BY_NAME:
        raise KeyError(f"unknown query {name!r}; known: {sorted(BY_NAME)}")
    return BY_NAME[name]
