"""Query extensions beyond the paper's Table 2.

§7 notes that the median query "can be easily extended to support
quantiles"; this module does exactly that, generating a rank-distance
exponential-mechanism query for an arbitrary quantile. It also provides a
range-count query builder (a common companion in deployments) to show the
language composing.
"""

from __future__ import annotations

from fractions import Fraction

from .catalog import QuerySpec


def quantile_query(quantile: float, categories: int = 2**15) -> QuerySpec:
    """A DP quantile query: which histogram bin holds the q-quantile?

    Uses the same doubled-rank-distance scores as the median query (so
    sensitivity stays 2), with the target rank ⌈q·N⌉ expressed through an
    exact fraction to keep the program in integer arithmetic.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be strictly between 0 and 1")
    frac = Fraction(quantile).limit_denominator(1000)
    num, den = frac.numerator, frac.denominator
    # Target rank r = ceil(q*N); distances are doubled so they stay
    # integral: score_i = -|den*(2*cum) - 2*num*N - den| / den-ish, but we
    # can simply scale the whole distance by den (a constant factor on all
    # scores rescales the sensitivity, which the spec declares).
    source = f"""
aggr = sum(db);
c = len(aggr);
cum = 0;
for i = 0 to c - 1 do
  cum = cum + aggr[i];
  lowdist = 2 * {num} * N + {den} - 2 * {den} * cum;
  highdist = 2 * {den} * cum - 2 * {den} * aggr[i] - 2 * {num} * N - {den};
  low = clip(lowdist, 0, 2 * {den} * N);
  high = clip(highdist, 0, 2 * {den} * N);
  scores[i] = 0 - low - high;
endfor
result = em(scores);
output(result);
"""
    return QuerySpec(
        name=f"quantile-{quantile:g}",
        action=f"{quantile:g}-quantile",
        source_paper="[14], extended",
        source=source,
        categories=categories,
        sensitivity=2.0 * den,  # distances scaled by den
        uses_em=True,
        paper_lines=0,
    )


def range_count_query(low_bin: int, high_bin: int, categories: int = 2**15) -> QuerySpec:
    """A noised count of participants whose category lies in [low, high]."""
    if not 0 <= low_bin <= high_bin < categories:
        raise ValueError("invalid bin range")
    width = high_bin - low_bin
    source = f"""
aggr = sum(db);
total = 0;
for i = {low_bin} to {high_bin} do
  total = total + aggr[i];
endfor
noisy = laplace(total, sens / epsilon);
output(noisy);
"""
    return QuerySpec(
        name=f"range-count-{low_bin}-{high_bin}",
        action=f"count in bins [{low_bin}, {high_bin}]",
        source_paper="composition",
        source=source,
        categories=categories,
        sensitivity=1.0,
        uses_em=False,
        paper_lines=0,
    )
