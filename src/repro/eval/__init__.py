"""Evaluation harness (§7): one entry point per table and figure."""

from .experiments import (
    PAPER_CONSTRAINTS,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    plan_all_queries,
    plan_paper_query,
    table1,
    table2,
)
from .hetero import heterogeneity_experiment
from .power import fig11

__all__ = [
    "PAPER_CONSTRAINTS",
    "plan_paper_query",
    "plan_all_queries",
    "table1",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "heterogeneity_experiment",
]
