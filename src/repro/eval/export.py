"""Export evaluation artifacts as CSV files.

``export_all(directory)`` regenerates every table and figure (§7) and
writes one CSV per artifact — the machine-readable counterpart of the
printed report, for plotting or diffing across runs.
"""

from __future__ import annotations

import csv
import os
from dataclasses import asdict, is_dataclass
from typing import List, Sequence

from . import experiments, hetero, power


def _write_rows(path: str, rows: Sequence[object]) -> None:
    if not rows:
        raise ValueError(f"no rows to write to {path}")
    first = rows[0]
    if is_dataclass(first):
        dict_rows = [asdict(r) for r in rows]
    else:
        dict_rows = [dict(r) for r in rows]
    fieldnames = list(dict_rows[0])
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in dict_rows:
            writer.writerow(
                {
                    key: (value.hex() if isinstance(value, bytes) else value)
                    for key, value in row.items()
                }
            )


def export_all(directory: str) -> List[str]:
    """Write every artifact; returns the file paths created."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []

    artifacts = {
        "table1.csv": experiments.table1(),
        "table2.csv": experiments.table2(),
        "fig6_participant_costs.csv": experiments.fig6(),
        "fig7_committee_costs.csv": experiments.fig7(),
        "fig8_aggregator_costs.csv": experiments.fig8(),
        "fig9_planner_runtime.csv": experiments.fig9(),
        "fig10_scalability.csv": experiments.fig10(),
        "fig11_power.csv": power.fig11(),
        "hetero.csv": hetero.heterogeneity_experiment(num_parties=12, num_scores=8),
    }
    for filename, rows in artifacts.items():
        path = os.path.join(directory, filename)
        _write_rows(path, rows)
        written.append(path)
    return written
