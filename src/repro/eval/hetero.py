"""§7.5 — effects of heterogeneity on the committee MPCs.

The paper runs its most complex MPC (Gumbel noising) with 42 parties and
measures two effects:

* **geo-distribution**: re-running with tc-shaped latencies as if the
  parties sat in Mumbai, New York, Paris, and Sydney raised the MP-SPDZ
  time from 73.8 s to 521.2 s (+606%) — MPCs are round-bound, so per-round
  latency dominates;
* **slower devices**: swapping 4 of 42 servers for Raspberry Pi 4s raised
  it to 111.7 s (+51%) — rounds are bottlenecked by the slowest party's
  *compute*, which is the smaller cost component.

We reproduce the experiment structurally: the actual Gumbel-noise +
argmax MPC runs in our engine with 42 parties to obtain the real round and
triple counts of the protocol, and scenario wall-clock is modeled as
rounds x (per-round overhead + slowest-party compute). The per-round
constants are calibrated to the paper's cluster anchor (73.8 s baseline);
the *ratios* are then predictions of the model, not inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..mpc.engine import MPCEngine
from ..mpc.protocols import shared_gumbel_noise, to_fixpoint

#: Effective per-round overhead (seconds). The LAN figure reflects the
#: paper's cluster; the geo figure is the effective (pipelined) overhead
#: under Mumbai/New York/Paris/Sydney latencies.
ROUND_OVERHEAD_LAN = 5.0e-3
ROUND_OVERHEAD_GEO = 36.0e-3

#: Per-round compute of the slowest party (seconds); Raspberry-Pi-class
#: devices run the same crypto ~8x slower (§7.5: 767 us vs 6 ms RSA).
PER_ROUND_COMPUTE_SERVER = 0.45e-3
DEVICE_SLOWDOWN = 8.0


@dataclass
class HeteroResult:
    scenario: str
    rounds: int
    seconds: float
    increase_pct: float


def run_gumbel_mpc(
    num_parties: int = 42,
    num_scores: int = 16,
    seed: int = 7,
) -> MPCEngine:
    """Run the actual Gumbel-noise + argmax MPC and return the engine.

    This is the real protocol over Shamir shares: every score is scaled to
    fixpoint, noised with a jointly generated Gumbel sample, and the argmax
    is computed obliviously; the engine's counters then tell us how many
    communication rounds the protocol needed.
    """
    rng = random.Random(seed)
    engine = MPCEngine(num_parties, rng=rng, bit_width=40)
    scores = [
        engine.mul_public(engine.input_value(rng.randrange(100)), to_fixpoint(1.0))
    ]
    scores += [
        engine.mul_public(engine.input_value(rng.randrange(100)), to_fixpoint(1.0))
        for _ in range(num_scores - 1)
    ]
    noised = [
        engine.add(s, shared_gumbel_noise(engine, 2.0, rng)) for s in scores
    ]
    index = engine.argmax(noised)
    engine.open(index)
    return engine


def heterogeneity_experiment(
    num_parties: int = 42, num_scores: int = 16, seed: int = 7
) -> List[HeteroResult]:
    """The three §7.5 scenarios for the measured protocol."""
    engine = run_gumbel_mpc(num_parties, num_scores, seed)
    rounds = engine.counters.rounds

    def wall_clock(overhead: float, slowest_compute: float) -> float:
        return rounds * (overhead + slowest_compute)

    base = wall_clock(ROUND_OVERHEAD_LAN, PER_ROUND_COMPUTE_SERVER)
    geo = wall_clock(ROUND_OVERHEAD_GEO, PER_ROUND_COMPUTE_SERVER)
    slow = wall_clock(ROUND_OVERHEAD_LAN, PER_ROUND_COMPUTE_SERVER * DEVICE_SLOWDOWN)
    return [
        HeteroResult("cluster (baseline)", rounds, base, 0.0),
        HeteroResult("geo-distributed", rounds, geo, 100.0 * (geo - base) / base),
        HeteroResult("4 slow devices", rounds, slow, 100.0 * (slow - base) / base),
    ]


def print_hetero() -> None:
    print("§7.5 — heterogeneity effects on the Gumbel MPC (42 parties)")
    for r in heterogeneity_experiment():
        print(
            f"{r.scenario:20s} rounds={r.rounds:6d} time={r.seconds:7.1f}s "
            f"(+{r.increase_pct:.0f}%)"
        )


if __name__ == "__main__":
    print_hetero()
