"""Executable reproduction report.

EXPERIMENTS.md states which of the paper's claims hold; this module makes
those claims *executable*: each check encodes a paper anchor (a number or
an ordering from §7) and evaluates it against freshly regenerated
artifacts, then renders a pass/fail report. ``python -m repro.eval.report``
writes REPORT.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from . import experiments, hetero, power


@dataclass
class Check:
    """One verifiable claim: section, the paper's statement, our result."""

    section: str
    claim: str
    measured: str
    passed: bool


def _fmt(value: float, unit: str = "") -> str:
    return f"{value:,.1f}{unit}"


def run_checks() -> List[Check]:
    checks: List[Check] = []

    def add(section: str, claim: str, measured: str, passed: bool) -> None:
        checks.append(Check(section, claim, measured, passed))

    # ----------------------------------------------------------- Table 1
    rows = {r.approach: r for r in experiments.table1()}
    add(
        "Table 1",
        "FHE-only takes years of aggregator compute",
        rows["FHE"].aggregator_computation,
        "year" in rows["FHE"].aggregator_computation,
    )
    add(
        "Table 1",
        "only Arboretum optimizes automatically and supports large categorical queries",
        f"Arboretum: categorical={rows['Arboretum'].categorical}, "
        f"optimize={rows['Arboretum'].optimization}; "
        f"Orchard: categorical={rows['Orchard [54]'].categorical}",
        rows["Arboretum"].categorical == "yes"
        and rows["Arboretum"].optimization == "automatic"
        and rows["Orchard [54]"].categorical == "limited",
    )

    # ----------------------------------------------------------- Figure 6
    fig6 = {(r.query, r.system): r for r in experiments.fig6()}
    em_min = min(
        fig6[(q, "arboretum")].total_seconds
        for q in ("top1", "topK", "gap", "auction", "secrecy", "median")
    )
    lap_max = max(
        fig6[(q, "arboretum")].total_seconds
        for q in ("hypotest", "cms", "bayes", "k-medians")
    )
    add(
        "Fig 6",
        "exponential-mechanism queries cost far more than Laplace queries",
        f"cheapest EM {_fmt(em_min, ' s')} vs priciest Laplace {_fmt(lap_max, ' s')}",
        em_min > 3 * lap_max,
    )
    bayes_ratio = (
        fig6[("bayes", "arboretum")].total_seconds
        / fig6[("bayes", "Orchard")].total_seconds
    )
    add(
        "Fig 6",
        "Arboretum matches Orchard in expectation on Orchard's queries",
        f"bayes expected-cost ratio {bayes_ratio:.2f}",
        0.5 < bayes_ratio < 2.0,
    )

    # ----------------------------------------------------------- Figure 7
    fig7 = [r for r in experiments.fig7() if r.system == "arboretum"]
    keygen = max(
        (r for r in fig7 if r.committee_type == "keygen"), key=lambda r: r.seconds
    )
    add(
        "Fig 7",
        "keygen committee ~700 MB / ~14 min per member (paper anchor)",
        f"{_fmt(keygen.bytes_sent / 1e6, ' MB')}, {_fmt(keygen.seconds / 60, ' min')}",
        5e8 < keygen.bytes_sent < 9e8 and 8 * 60 < keygen.seconds < 18 * 60,
    )
    worst = max(fig7, key=lambda r: r.seconds)
    add(
        "Fig 7",
        "every committee fits the 4 GB / 20 min device limits",
        f"worst: {_fmt(worst.seconds / 60, ' min')}, {_fmt(worst.bytes_sent / 1e9, ' GB')}",
        worst.seconds <= 20 * 60 + 1 and worst.bytes_sent <= 4e9,
    )
    frac = experiments.committee_selection_fraction("topK")
    add(
        "Fig 7",
        "well under 1% of participants serve on any committee (paper: <=0.49%)",
        f"topK: {frac * 100:.3f}%",
        frac < 0.01,
    )

    # ----------------------------------------------------------- Figure 8
    fig8 = {(r.query, r.system): r for r in experiments.fig8()}
    top1 = fig8[("top1", "arboretum")]
    add(
        "Fig 8",
        "aggregator finishes within ~15 h on 1,000 cores",
        f"top1: {top1.hours_on_cores():.1f} h",
        top1.hours_on_cores() < 15,
    )
    add(
        "Fig 8",
        "ZKP verification dominates aggregator compute",
        f"verify {top1.verification_core_seconds / 3600:,.0f} core-h vs "
        f"ops {top1.operations_core_seconds / 3600:,.0f} core-h",
        top1.verification_core_seconds > top1.operations_core_seconds,
    )

    # ----------------------------------------------------------- Figure 9
    fig9 = {r.query: r for r in experiments.fig9()}
    add(
        "Fig 9",
        "simple Laplace queries plan orders of magnitude faster than median",
        f"cms {fig9['cms'].runtime_seconds * 1000:.1f} ms vs "
        f"median {fig9['median'].runtime_seconds * 1000:.1f} ms",
        fig9["median"].runtime_seconds > 10 * fig9["cms"].runtime_seconds,
    )

    # ---------------------------------------------------------- Figure 10
    points = experiments.fig10(exponents=range(20, 31), limits=(1000.0, None))
    limited = [p for p in points if p.limit_core_hours == 1000.0]
    cutoff = max(
        (p.num_participants for p in limited if p.aggregator_hours is not None),
        default=0,
    )
    add(
        "Fig 10",
        "the A=1000 line stops beyond ~2^28 (paper anchor)",
        f"last feasible N = 2^{int(math.log2(cutoff))}" if cutoff else "never feasible",
        2**27 <= cutoff <= 2**29,
    )
    unlimited = [p for p in points if p.limit_core_hours is None]
    add(
        "Fig 10",
        "expected participant cost declines with N",
        f"{unlimited[0].expected_minutes:.2f} min at 2^20 -> "
        f"{unlimited[-1].expected_minutes:.2f} min at 2^30",
        unlimited[0].expected_minutes > 2 * unlimited[-1].expected_minutes,
    )

    # ---------------------------------------------------------- Figure 11
    fig11 = power.fig11()
    worst_power = max(fig11, key=lambda r: r.mah)
    add(
        "Fig 11",
        "all queries stay below 5% of an iPhone SE battery (81 mAh)",
        f"worst {worst_power.query}: {worst_power.mah:.1f} mAh",
        all(r.within_budget for r in fig11),
    )

    # --------------------------------------------------------------- §7.5
    het = {r.scenario: r for r in hetero.heterogeneity_experiment(12, 8)}
    geo = het["geo-distributed"].increase_pct
    slow = het["4 slow devices"].increase_pct
    add(
        "§7.5",
        "geo-distribution ~+606%, slow devices ~+51% (paper anchors)",
        f"geo +{geo:.0f}%, slow +{slow:.0f}%",
        300 < geo < 900 and 20 < slow < 120,
    )
    return checks


def render(checks: List[Check]) -> str:
    lines = [
        "# Reproduction report",
        "",
        "Regenerated from scratch by `python -m repro.eval.report`; each row",
        "is an executable check against a claim or anchor from the paper's",
        "evaluation (§7). See EXPERIMENTS.md for the prose comparison.",
        "",
        "| section | claim | measured | status |",
        "|---|---|---|---|",
    ]
    for c in checks:
        status = "PASS" if c.passed else "FAIL"
        lines.append(f"| {c.section} | {c.claim} | {c.measured} | {status} |")
    passed = sum(c.passed for c in checks)
    lines.append("")
    lines.append(f"**{passed}/{len(checks)} checks pass.**")
    return "\n".join(lines)


def main(path: str = "REPORT.md") -> int:
    checks = run_checks()
    text = render(checks)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(text)
    return 0 if all(c.passed for c in checks) else 1


if __name__ == "__main__":
    raise SystemExit(main())
