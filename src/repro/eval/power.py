"""Figure 11: power consumption of committee service on a mobile device.

The paper runs the most expensive MPC of each query with one party on a
Raspberry Pi 4 and measures the power draw with a USB meter, subtracting
the idle baseline. We reproduce the model: take each query's most
expensive committee (per the plan's cost breakdown), scale its compute
time to the Pi's speed, and convert active power x time into mAh at the
battery voltage — then compare against 5% of a 2022 iPhone SE battery
(1,624 mAh), the paper's reference line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..planner.costmodel import CostModel, PARTICIPANT_DEVICE, REFERENCE_SERVER
from ..queries.catalog import ALL_QUERIES
from .experiments import plan_paper_query

#: 2022 iPhone SE battery (§7.4).
IPHONE_SE_BATTERY_MAH = 1624.0
BATTERY_BUDGET_FRACTION = 0.05

#: Basic (non-committee) cost measured in the paper: ZK proof + encryption.
PAPER_BASE_COST_MAH = 6.0

#: Power draw *above idle* during active crypto computation (the paper
#: subtracts the idle baseline; a Pi 4 draws ~1.3 W extra under load).
DELTA_WATTS = 1.3

#: Fraction of a committee member's wall-clock spent actively computing;
#: the rest is network wait at (subtracted) idle power. Large MPCs are
#: round-bound, so the duty cycle is low.
COMPUTE_DUTY_CYCLE = 0.09


@dataclass
class PowerRow:
    query: str
    committee_type: str
    device_seconds: float
    mah: float
    base_mah: float

    @property
    def within_budget(self) -> bool:
        return self.mah <= BATTERY_BUDGET_FRACTION * IPHONE_SE_BATTERY_MAH


def fig11(model: CostModel = None) -> List[PowerRow]:
    """Per-query worst-case committee power draw on the Pi-class device."""
    model = model or CostModel()
    device = PARTICIPANT_DEVICE
    rows: List[PowerRow] = []
    for spec in ALL_QUERIES:
        result = plan_paper_query(spec)
        score = result.plan.score
        worst = max(score.committee_breakdown, key=lambda e: e.seconds, default=None)
        if worst is None:
            continue
        # Committee costs are scored at reference-server speed; rescale to
        # the device profile (the ~8x slowdown of §7.5), then keep only the
        # active-compute fraction at the above-idle power draw.
        device_seconds = worst.seconds * (REFERENCE_SERVER.speed / device.speed)
        amps = DELTA_WATTS / device.battery_volts
        mah = amps * (device_seconds * COMPUTE_DUTY_CYCLE / 3600.0) * 1000.0
        base_seconds = score.participant_base_seconds * (
            REFERENCE_SERVER.speed / device.speed
        )
        # Input proving/encryption is compute-bound: full duty cycle.
        base_mah = amps * (base_seconds / 3600.0) * 1000.0
        rows.append(
            PowerRow(spec.name, worst.committee_type, device_seconds, mah, base_mah)
        )
    return rows


def print_fig11() -> None:
    budget = BATTERY_BUDGET_FRACTION * IPHONE_SE_BATTERY_MAH
    print(f"Fig 11 — power on a Raspberry Pi 4 (budget: {budget:.0f} mAh = 5% battery)")
    for r in fig11():
        flag = "ok" if r.within_budget else "OVER"
        print(
            f"{r.query:10s} {r.committee_type:11s} {r.device_seconds / 60:6.1f} min "
            f"{r.mah:7.1f} mAh  base={r.base_mah:5.1f} mAh  [{flag}]"
        )


if __name__ == "__main__":
    print_fig11()
