"""Experiment harness: regenerates every table and figure of §7.

Each ``figN``/``tableN`` function returns structured rows (and can print
them in a layout mirroring the paper); the benchmark suite calls these and
checks the *shape* claims (who wins, by roughly what factor, where the
crossovers fall) rather than absolute numbers — our substrate is a
calibrated model, not the authors' testbed (see DESIGN.md).

Experimental setup follows §7.1/§7.2: N = 10^9 participants, f = 3%
malicious, 15% churn tolerance, 10^-8 failure probability over 1,000
queries; participants may send up to 4 GB and compute up to 20 minutes,
and the aggregator is limited to 1,000 core-hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..baselines.bohler import bohler_member_traffic
from ..baselines.honeycrisp import honeycrisp_score
from ..baselines.orchard import orchard_score
from ..baselines.strawmen import (
    ZIPCODE_CATEGORIES,
    ZIPCODE_PARTICIPANTS,
    all_to_all_mpc,
    fhe_only,
)
from ..planner.costmodel import Constraints, CostModel, Goal
from ..planner.plan import PlanScore
from ..planner.search import Planner, PlanningFailed, PlanningResult
from ..queries.catalog import ALL_QUERIES, LEGACY_SYSTEMS, PAPER_N, QuerySpec, get

#: §7.2 limits: 4 GB / 20 min per participant, 1,000 aggregator core-hours
#: ... the aggregator limit in §7.2 applies to *computation time given
#: 1,000 cores*, i.e. wall-clock hours; Fig 8(b) shows up to ~15 h, so the
#: core-second budget is 1,000 cores x that wall-clock allowance. We bound
#: core-seconds directly at 1,000 cores x 24 h.
PAPER_CONSTRAINTS = Constraints(
    participant_max_bytes=4e9,
    participant_max_seconds=20 * 60.0,
    aggregator_core_seconds=1000 * 24 * 3600.0,
)

_plan_cache: Dict[Tuple[str, int, float], PlanningResult] = {}


def plan_paper_query(
    spec: QuerySpec,
    num_participants: int = PAPER_N,
    constraints: Optional[Constraints] = None,
    model: Optional[CostModel] = None,
    use_cache: bool = True,
) -> PlanningResult:
    """Plan one catalog query at deployment scale with the §7.2 limits."""
    key = (spec.name, num_participants, id(constraints) if constraints else 0)
    if use_cache and key in _plan_cache:
        return _plan_cache[key]
    env = spec.environment(num_participants)
    planner = Planner(
        env,
        model=model,
        constraints=constraints or PAPER_CONSTRAINTS,
        goal=Goal("participant_expected_seconds"),
    )
    result = planner.plan_source(spec.source, spec.name)
    if use_cache:
        _plan_cache[key] = result
    return result


def plan_all_queries(num_participants: int = PAPER_N) -> Dict[str, PlanningResult]:
    return {
        spec.name: plan_paper_query(spec, num_participants) for spec in ALL_QUERIES
    }


# --------------------------------------------------------------------------
# Table 1 — strawman comparison
# --------------------------------------------------------------------------


@dataclass
class Table1Row:
    approach: str
    aggregator_computation: str
    participant_bandwidth_typical: str
    participant_bandwidth_worst: str
    numerical: bool
    categorical: str  # "yes" / "limited" / "no"
    participants_contribute: str
    optimization: str


def _fmt_bytes(n: float) -> str:
    for unit, scale in (("PB", 1e15), ("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if n >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


def table1() -> List[Table1Row]:
    """§3.2 / Table 1 for the zip-code example (N=10^8, R=41,683)."""
    n, c = ZIPCODE_PARTICIPANTS, ZIPCODE_CATEGORIES
    fhe = fhe_only(n, c)
    mpc = all_to_all_mpc(n)
    bohler = bohler_member_traffic(n, committee_size=40)
    spec = get("top1")
    arboretum = plan_paper_query(spec, num_participants=n, use_cache=False)
    arb_cost = arboretum.plan.cost
    orchard_env = spec.environment(n)
    orchard = orchard_score(orchard_env, released_values=c, uses_em=False)

    rows = [
        Table1Row(
            "FHE",
            f"~{fhe.aggregator_core_years:.0f} years",
            _fmt_bytes(fhe.participant_bytes_typical),
            _fmt_bytes(fhe.participant_bytes_worst),
            True,
            "yes",
            "no",
            "no",
        ),
        Table1Row(
            "All-to-all MPC",
            "n/a",
            _fmt_bytes(mpc.participant_bytes_typical),
            _fmt_bytes(mpc.participant_bytes_worst),
            True,
            "yes",
            "yes",
            "no",
        ),
        Table1Row(
            "Böhler [14]",
            "n/a",
            "kBs",
            _fmt_bytes(bohler.member_traffic_bytes),
            True,
            "yes",
            "1 committee",
            "no",
        ),
        Table1Row(
            "Orchard [54]",
            f"{orchard.cost.aggregator_core_seconds / 3600:.0f} core-hours",
            _fmt_bytes(orchard.cost.participant_expected_bytes),
            _fmt_bytes(orchard.cost.participant_max_bytes),
            True,
            "limited",
            "1 committee",
            "no",
        ),
        Table1Row(
            "Arboretum",
            f"{arb_cost.aggregator_core_seconds / 3600:.0f} core-hours",
            _fmt_bytes(arb_cost.participant_expected_bytes),
            _fmt_bytes(arb_cost.participant_max_bytes),
            True,
            "yes",
            "yes",
            "automatic",
        ),
    ]
    return rows


# --------------------------------------------------------------------------
# Table 2 — supported queries
# --------------------------------------------------------------------------


@dataclass
class Table2Row:
    query: str
    action: str
    source: str
    lines: int
    paper_lines: int


def table2() -> List[Table2Row]:
    return [
        Table2Row(q.name, q.action, q.source_paper, q.lines, q.paper_lines)
        for q in ALL_QUERIES
    ]


# --------------------------------------------------------------------------
# Figures 6-8 — per-entity costs
# --------------------------------------------------------------------------


@dataclass
class ParticipantCostRow:
    """Fig 6: expected per-participant cost, split base vs MPC expectation."""

    query: str
    system: str  # "arboretum" / "honeycrisp" / "orchard"
    encryption_verification_seconds: float
    mpc_seconds: float
    encryption_verification_bytes: float
    mpc_bytes: float

    @property
    def total_seconds(self) -> float:
        return self.encryption_verification_seconds + self.mpc_seconds

    @property
    def total_bytes(self) -> float:
        return self.encryption_verification_bytes + self.mpc_bytes


def _participant_row(query: str, system: str, score: PlanScore) -> ParticipantCostRow:
    cost = score.cost
    return ParticipantCostRow(
        query=query,
        system=system,
        encryption_verification_seconds=score.participant_base_seconds,
        mpc_seconds=cost.participant_expected_seconds - score.participant_base_seconds,
        encryption_verification_bytes=score.participant_base_bytes,
        mpc_bytes=cost.participant_expected_bytes - score.participant_base_bytes,
    )


def _legacy_score(spec: QuerySpec) -> Optional[PlanScore]:
    env = spec.environment()
    if spec.name == "cms":
        return honeycrisp_score(env, released_values=1)
    if spec.name == "bayes":
        return orchard_score(env, released_values=spec.categories)
    if spec.name == "k-medians":
        return orchard_score(env, released_values=spec.categories)
    return None


def fig6() -> List[ParticipantCostRow]:
    """Expected bandwidth and computation per participant (Fig 6)."""
    rows: List[ParticipantCostRow] = []
    for spec in ALL_QUERIES:
        result = plan_paper_query(spec)
        rows.append(_participant_row(spec.name, "arboretum", result.plan.score))
        legacy = _legacy_score(spec)
        if legacy is not None:
            rows.append(
                _participant_row(spec.name, LEGACY_SYSTEMS[spec.name], legacy)
            )
    return rows


@dataclass
class CommitteeCostRow:
    """Fig 7: actual per-member cost of serving, by committee type."""

    query: str
    system: str
    committee_type: str
    seconds: float
    bytes_sent: float
    committees: float


def fig7() -> List[CommitteeCostRow]:
    rows: List[CommitteeCostRow] = []
    for spec in ALL_QUERIES:
        result = plan_paper_query(spec)
        for entry in result.plan.score.committee_breakdown:
            rows.append(
                CommitteeCostRow(
                    spec.name,
                    "arboretum",
                    entry.committee_type,
                    entry.seconds,
                    entry.bytes_sent,
                    entry.committees,
                )
            )
        legacy = _legacy_score(spec)
        if legacy is not None:
            for entry in legacy.committee_breakdown:
                rows.append(
                    CommitteeCostRow(
                        spec.name,
                        LEGACY_SYSTEMS[spec.name],
                        entry.committee_type,
                        entry.seconds,
                        entry.bytes_sent,
                        entry.committees,
                    )
                )
    return rows


def committee_selection_fraction(query: str) -> float:
    """§7.2: fraction of participants serving on any committee per run."""
    result = plan_paper_query(get(query))
    params = result.plan.committee_params
    return params.selection_fraction(result.logical_plan.env.num_participants)


@dataclass
class AggregatorCostRow:
    """Fig 8: aggregator traffic and computation (1,000 cores)."""

    query: str
    system: str
    forwarding_bytes: float
    verification_core_seconds: float
    operations_core_seconds: float

    @property
    def total_core_seconds(self) -> float:
        return self.verification_core_seconds + self.operations_core_seconds

    def hours_on_cores(self, cores: int = 1000) -> float:
        return self.total_core_seconds / cores / 3600.0


def _aggregator_row(query: str, system: str, score: PlanScore) -> AggregatorCostRow:
    breakdown = score.aggregator_breakdown
    verify_seconds = breakdown.get("verify", (0.0, 0.0))[0]
    operations = sum(sec for name, (sec, _b) in breakdown.items() if name != "verify")
    return AggregatorCostRow(
        query=query,
        system=system,
        forwarding_bytes=score.cost.aggregator_bytes,
        verification_core_seconds=verify_seconds,
        operations_core_seconds=operations,
    )


def fig8() -> List[AggregatorCostRow]:
    rows: List[AggregatorCostRow] = []
    for spec in ALL_QUERIES:
        result = plan_paper_query(spec)
        rows.append(_aggregator_row(spec.name, "arboretum", result.plan.score))
        legacy = _legacy_score(spec)
        if legacy is not None:
            rows.append(_aggregator_row(spec.name, LEGACY_SYSTEMS[spec.name], legacy))
    return rows


# --------------------------------------------------------------------------
# Figure 9 — planner runtime
# --------------------------------------------------------------------------


@dataclass
class PlannerRuntimeRow:
    query: str
    runtime_seconds: float
    prefixes_considered: int
    candidates_scored: int
    space_size: int
    cost_cache_hits: int = 0
    expansion_cache_hits: int = 0


def fig9() -> List[PlannerRuntimeRow]:
    rows = []
    for spec in ALL_QUERIES:
        result = plan_paper_query(spec, use_cache=False)
        stats = result.statistics
        rows.append(
            PlannerRuntimeRow(
                spec.name,
                stats.runtime_seconds,
                stats.prefixes_considered,
                stats.candidates_scored,
                stats.space_size,
                stats.cost_cache_hits,
                stats.expansion_cache_hits,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 10 — scalability of top1 under aggregator limits
# --------------------------------------------------------------------------


@dataclass
class ScalabilityPoint:
    num_participants: int
    limit_core_hours: Optional[float]
    aggregator_hours: Optional[float]  # core-hours
    expected_minutes: Optional[float]
    max_minutes: Optional[float]


def fig10(
    exponents: range = range(17, 31),
    limits: Tuple[Optional[float], ...] = (1000.0, 5000.0, None),
) -> List[ScalabilityPoint]:
    spec = get("top1")
    points: List[ScalabilityPoint] = []
    for limit in limits:
        for exp in exponents:
            n = 2**exp
            constraints = Constraints(
                participant_max_bytes=PAPER_CONSTRAINTS.participant_max_bytes,
                participant_max_seconds=PAPER_CONSTRAINTS.participant_max_seconds,
                aggregator_core_seconds=None if limit is None else limit * 3600.0,
            )
            try:
                result = plan_paper_query(
                    spec, num_participants=n, constraints=constraints, use_cache=False
                )
                cost = result.plan.cost
                points.append(
                    ScalabilityPoint(
                        n,
                        limit,
                        cost.aggregator_core_seconds / 3600.0,
                        cost.participant_expected_seconds / 60.0,
                        cost.participant_max_seconds / 60.0,
                    )
                )
            except PlanningFailed:
                # The aggregator cannot even afford the mandatory work
                # (e.g. ZKP checks) under this limit — the line stops, as in
                # Fig 10(a) for A=1000 beyond N=2^28.
                points.append(ScalabilityPoint(n, limit, None, None, None))
    return points


# --------------------------------------------------------------------------
# Pretty printers
# --------------------------------------------------------------------------


# ------------------------------------------------------- chaos sweep (§5.1)


@dataclass
class ChaosRow:
    """One point of the injected-fault-rate vs recovery-overhead sweep."""

    num_faults: int
    seed: int
    completed: bool
    identical: bool
    retries: int
    extra_committees: int
    waited_seconds: float


def chaos_sweep(
    fault_counts: Tuple[int, ...] = (0, 1, 2, 3),
    seeds: Tuple[int, ...] = (3, 4),
    devices: int = 32,
    committee_size: int = 4,
) -> List[ChaosRow]:
    """Sweep the injected protocol-fault count against recovery overhead.

    The §5.1 claim under test: any schedule within the tolerance recovers
    to the *bit-identical* released value of its fault-free twin — the
    fault rate buys only overhead (retries, extra committees, simulated
    waiting), never a different answer.
    """
    import random

    from ..analysis.types import QueryEnvironment
    from ..faults import FaultInjector, FaultPlan, UnrecoverableFault
    from ..runtime.executor import QueryExecutor
    from ..runtime.network import FederatedNetwork

    def run(plan: FaultPlan, seed: int):
        env = QueryEnvironment(num_participants=devices, row_width=8, epsilon=4.0)
        planning = Planner(env).plan_source(
            "aggr = sum(db); output(em(aggr));", name="chaos-sweep"
        )
        network = FederatedNetwork(devices, rng=random.Random(seed))
        network.load_categorical_data(8)
        executor = QueryExecutor(
            network,
            planning,
            committee_size=committee_size,
            key_prime_bits=96,
            rng=random.Random(seed + 1),
            faults=FaultInjector(plan, seed=seed),
        )
        return executor.run()

    rows: List[ChaosRow] = []
    for seed in seeds:
        baseline = run(FaultPlan("none"), seed)
        for num_faults in fault_counts:
            plan = FaultPlan.random_plan(
                seed=seed * 1000 + num_faults, num_faults=num_faults
            )
            try:
                outcome = run(plan, seed)
            except UnrecoverableFault as exc:
                rows.append(
                    ChaosRow(
                        num_faults, seed, False, False,
                        exc.log.retries, 0, exc.log.waited_seconds,
                    )
                )
                continue
            log = outcome.fault_log
            rows.append(
                ChaosRow(
                    num_faults,
                    seed,
                    True,
                    outcome.value == baseline.value,
                    log.retries,
                    outcome.committees_used - baseline.committees_used,
                    log.waited_seconds,
                )
            )
    return rows


def print_chaos() -> None:
    print("Chaos — injected protocol faults vs recovery overhead")
    print(
        f"{'faults':>6s} {'seed':>5s} {'done':>5s} {'identical':>9s} "
        f"{'retries':>7s} {'extra-cmte':>10s} {'waited':>8s}"
    )
    for r in chaos_sweep():
        print(
            f"{r.num_faults:6d} {r.seed:5d} {str(r.completed):>5s} "
            f"{str(r.identical):>9s} {r.retries:7d} {r.extra_committees:10d} "
            f"{r.waited_seconds:7.1f}s"
        )


def print_table1() -> None:
    print(f"Table 1 — approaches at N={ZIPCODE_PARTICIPANTS:.0e}, R={ZIPCODE_CATEGORIES}")
    header = (
        f"{'approach':16s} {'aggregator':>16s} {'bw typ.':>10s} {'bw worst':>10s} "
        f"{'categorical':>11s} {'contribute':>12s} {'optimize':>9s}"
    )
    print(header)
    for r in table1():
        print(
            f"{r.approach:16s} {r.aggregator_computation:>16s} "
            f"{r.participant_bandwidth_typical:>10s} {r.participant_bandwidth_worst:>10s} "
            f"{r.categorical:>11s} {r.participants_contribute:>12s} {r.optimization:>9s}"
        )


def print_table2() -> None:
    print("Table 2 — supported queries")
    print(f"{'query':10s} {'action':26s} {'from':6s} {'lines':>5s} {'paper':>5s}")
    for r in table2():
        print(f"{r.query:10s} {r.action:26s} {r.source:6s} {r.lines:>5d} {r.paper_lines:>5d}")


def print_fig6() -> None:
    print("Fig 6 — expected per-participant cost")
    print(f"{'query':10s} {'system':10s} {'enc+verif':>10s} {'MPC':>8s} {'traffic':>10s}")
    for r in fig6():
        print(
            f"{r.query:10s} {r.system:10s} {r.encryption_verification_seconds:9.1f}s "
            f"{r.mpc_seconds:7.1f}s {_fmt_bytes(r.total_bytes):>10s}"
        )


def print_fig7() -> None:
    print("Fig 7 — per-member committee cost by type")
    print(f"{'query':10s} {'system':10s} {'type':11s} {'compute':>9s} {'traffic':>10s} {'count':>8s}")
    for r in fig7():
        print(
            f"{r.query:10s} {r.system:10s} {r.committee_type:11s} "
            f"{r.seconds / 60:8.1f}m {_fmt_bytes(r.bytes_sent):>10s} {r.committees:8.0f}"
        )


def print_fig8() -> None:
    print("Fig 8 — aggregator cost (1,000 cores)")
    print(f"{'query':10s} {'system':10s} {'traffic':>10s} {'verif':>8s} {'ops':>8s} {'hours':>6s}")
    for r in fig8():
        print(
            f"{r.query:10s} {r.system:10s} {_fmt_bytes(r.forwarding_bytes):>10s} "
            f"{r.verification_core_seconds / 3600:7.0f}h {r.operations_core_seconds / 3600:7.0f}h "
            f"{r.hours_on_cores():6.1f}"
        )


def print_fig9() -> None:
    print("Fig 9 — planner runtime")
    for r in fig9():
        print(
            f"{r.query:10s} {r.runtime_seconds * 1000:9.1f} ms  "
            f"prefixes={r.prefixes_considered:6d} candidates={r.candidates_scored:5d} "
            f"space={r.space_size:7d} cache_hits={r.cost_cache_hits:6d}"
        )


def print_fig10() -> None:
    print("Fig 10 — top1 scalability under aggregator limits")
    for p in fig10():
        limit = "none" if p.limit_core_hours is None else f"{p.limit_core_hours:.0f}ch"
        if p.aggregator_hours is None:
            print(f"N=2^{int(math.log2(p.num_participants)):2d} A={limit:7s} INFEASIBLE")
        else:
            print(
                f"N=2^{int(math.log2(p.num_participants)):2d} A={limit:7s} "
                f"agg={p.aggregator_hours:8.1f}ch exp={p.expected_minutes:6.2f}m "
                f"max={p.max_minutes:6.1f}m"
            )


def main() -> None:
    print_table1()
    print()
    print_table2()
    print()
    print_fig6()
    print()
    print_fig7()
    print()
    print_fig8()
    print()
    print_fig9()
    print()
    print_fig10()


if __name__ == "__main__":
    main()
