"""Secure program interpreter: runs post-aggregate statements over shares.

After the decryption committees turn the homomorphic aggregate into MPC
sharings, the rest of the query program — transforms, the exponential
mechanism, Laplace noising, declassification — executes over secret
values inside committees. This interpreter walks the original AST; scalar
arithmetic maps to MPC engine operations, and the DP mechanisms are
*hooks* the executor provides, because they span multiple committees
(noising batches, the argmax tree) with VSR hand-offs in between.

Supported secret operations: +, -, multiplication by public integers,
comparisons, ``abs``, ``max``/``argmax``, ``sum``, ``clip``, array reads
and writes with public indices, ``for`` loops with public bounds, and
``if`` over *public* conditions. Branching on a secret condition is
rejected — the surface queries never need it, because ``em``/``max``/
``abs`` cover the oblivious cases (Fig 4's secret branches live inside
operator instantiations, which the executor runs natively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from ..lang.ast import (
    Assign,
    BinOp,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    Index,
    IndexAssign,
    IntLit,
    Stmt,
    UnOp,
    Var,
)
from ..mpc.engine import MPCEngine, SecretValue


class InterpreterError(Exception):
    """Raised for programs outside the supported secure subset."""


@dataclass
class Secret:
    """A secret integer living in some committee's MPC engine."""

    value: SecretValue


Value = Union[int, float, bool, list, Secret]


@dataclass
class MechanismHooks:
    """Executor-provided implementations of the DP release points.

    ``em(scores, k)`` gets a list of Secret scores and returns public
    indices; ``laplace(value, scale)`` gets a Secret (or public) value and
    returns the public noised result. Both are multi-committee protocols.
    """

    em: Callable[[List[Secret], int], Union[int, List[int]]]
    laplace: Callable[[Secret, float], float]


class SecureInterpreter:
    """Executes statements with secret bindings inside one committee chain."""

    def __init__(
        self,
        engine: MPCEngine,
        hooks: MechanismHooks,
        bindings: Optional[Dict[str, Value]] = None,
    ):
        self.engine = engine
        self.hooks = hooks
        self.bindings: Dict[str, Value] = dict(bindings or {})
        self.outputs: List[Value] = []

    # ------------------------------------------------------------- execution

    def execute(self, statements: List[Stmt]) -> List[Value]:
        for stmt in statements:
            self._exec(stmt)
        return self.outputs

    def _exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.bindings[stmt.var] = self._eval(stmt.value)
        elif isinstance(stmt, IndexAssign):
            index = self._eval(stmt.index)
            if isinstance(index, Secret):
                raise InterpreterError("array stores need public indices")
            target = self.bindings.setdefault(stmt.var, [])
            if not isinstance(target, list):
                raise InterpreterError(f"{stmt.var!r} is not an array")
            index = int(index)
            while len(target) <= index:
                target.append(0)
            target[index] = self._eval(stmt.value)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, For):
            start = self._require_public(self._eval(stmt.start), "loop bound")
            end = self._require_public(self._eval(stmt.end), "loop bound")
            for i in range(int(start), int(end) + 1):
                self.bindings[stmt.var] = i
                for inner in stmt.body:
                    self._exec(inner)
        elif isinstance(stmt, If):
            cond = self._eval(stmt.cond)
            if isinstance(cond, Secret):
                raise InterpreterError(
                    "branching on a secret condition is not supported; use "
                    "abs/max/em which execute obliviously"
                )
            body = stmt.then_body if cond else stmt.else_body
            for inner in body:
                self._exec(inner)
        else:
            raise InterpreterError(f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------ evaluation

    def _require_public(self, value: Value, what: str) -> Union[int, float]:
        if isinstance(value, Secret):
            raise InterpreterError(f"{what} must be public")
        if isinstance(value, list):
            raise InterpreterError(f"{what} must be scalar")
        return value

    def _as_secret(self, value: Value) -> Secret:
        if isinstance(value, Secret):
            return value
        if isinstance(value, bool):
            return Secret(self.engine.constant(int(value)))
        if isinstance(value, int):
            return Secret(self.engine.constant(value))
        if isinstance(value, float):
            if not value.is_integer():
                raise InterpreterError(
                    "secure arithmetic carries integers; scale fractional "
                    "constants into the query instead"
                )
            return Secret(self.engine.constant(int(value)))
        raise InterpreterError(f"cannot share value of type {type(value).__name__}")

    def _eval(self, expr: Expr) -> Value:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in self.bindings:
                raise InterpreterError(f"undefined variable {expr.name!r}")
            return self.bindings[expr.name]
        if isinstance(expr, Index):
            base = self._eval(expr.base)
            index = self._eval(expr.index)
            if isinstance(index, Secret):
                raise InterpreterError("array reads need public indices")
            if not isinstance(base, list):
                raise InterpreterError("indexing a non-array value")
            return base[int(index)]
        if isinstance(expr, UnOp):
            return self._eval_unop(expr)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, Call):
            return self._eval_call(expr)
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")

    def _eval_unop(self, expr: UnOp) -> Value:
        operand = self._eval(expr.operand)
        if expr.op == "-":
            if isinstance(operand, Secret):
                return Secret(self.engine.mul_public(operand.value, -1))
            return -operand
        if expr.op == "!":
            if isinstance(operand, Secret):
                return Secret(
                    self.engine.sub(self.engine.constant(1), operand.value)
                )
            return not operand
        raise InterpreterError(f"unsupported unary operator {expr.op!r}")

    def _eval_binop(self, expr: BinOp) -> Value:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        secret = isinstance(left, Secret) or isinstance(right, Secret)
        if not secret:
            return self._public_binop(expr.op, left, right)
        op = expr.op
        if op == "+":
            return Secret(
                self.engine.add(self._as_secret(left).value, self._as_secret(right).value)
            )
        if op == "-":
            return Secret(
                self.engine.sub(self._as_secret(left).value, self._as_secret(right).value)
            )
        if op == "*":
            if isinstance(left, Secret) and isinstance(right, Secret):
                return Secret(self.engine.mul(left.value, right.value))
            secret_side, public_side = (
                (left, right) if isinstance(left, Secret) else (right, left)
            )
            factor = self._require_public(public_side, "multiplier")
            if isinstance(factor, float) and not factor.is_integer():
                raise InterpreterError(
                    "secret values can only be scaled by integers in MPC"
                )
            return Secret(self.engine.mul_public(secret_side.value, int(factor)))
        if op in ("<", "<=", ">", ">=", "==", "!="):
            a = self._as_secret(left).value
            b = self._as_secret(right).value
            if op == "<":
                return Secret(self.engine.less_than(a, b))
            if op == ">":
                return Secret(self.engine.less_than(b, a))
            if op == "<=":
                gt = self.engine.less_than(b, a)
                return Secret(self.engine.sub(self.engine.constant(1), gt))
            if op == ">=":
                lt = self.engine.less_than(a, b)
                return Secret(self.engine.sub(self.engine.constant(1), lt))
            lt = self.engine.less_than(a, b)
            gt = self.engine.less_than(b, a)
            either = self.engine.add(lt, gt)
            if op == "!=":
                return Secret(either)
            return Secret(self.engine.sub(self.engine.constant(1), either))
        if op in ("&&", "||"):
            a = self._as_secret(left).value
            b = self._as_secret(right).value
            both = self.engine.mul(a, b)
            if op == "&&":
                return Secret(both)
            total = self.engine.add(a, b)
            return Secret(self.engine.sub(total, both))
        raise InterpreterError(f"unsupported secret operator {op!r}")

    def _public_binop(self, op: str, left: Value, right: Value) -> Value:
        table = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "&&": lambda a, b: bool(a) and bool(b),
            "||": lambda a, b: bool(a) or bool(b),
        }
        if op not in table:
            raise InterpreterError(f"unsupported operator {op!r}")
        return table[op](left, right)

    # --------------------------------------------------------------- builtins

    def _secret_list(self, value: Value, what: str) -> List[Secret]:
        if not isinstance(value, list):
            raise InterpreterError(f"{what} needs an array argument")
        return [self._as_secret(v) for v in value]

    def _eval_call(self, expr: Call) -> Value:
        func = expr.func
        args = [self._eval(a) for a in expr.args]
        if func == "em":
            scores = self._secret_list(args[0], "em")
            k = int(self._require_public(args[1], "k")) if len(args) == 2 else 1
            return self.hooks.em(scores, k)
        if func == "laplace":
            scale = self._require_public(args[1], "laplace scale")
            if isinstance(args[0], list):
                # Vector Laplace: independent noise per element; the joint
                # release is certified against the vector's L1 sensitivity.
                return [
                    self.hooks.laplace(self._as_secret(v), float(scale))
                    for v in args[0]
                ]
            return self.hooks.laplace(self._as_secret(args[0]), float(scale))
        if func == "output":
            self.outputs.append(args[0])
            return args[0]
        if func == "declassify":
            if isinstance(args[0], Secret):
                return self.engine.open(args[0].value)
            return args[0]
        if func == "sum":
            values = args[0]
            if not isinstance(values, list):
                raise InterpreterError("sum needs an array argument")
            if any(isinstance(v, Secret) for v in values):
                secrets = [self._as_secret(v).value for v in values]
                return Secret(self.engine.sum_values(secrets))
            return sum(values)
        if func == "len":
            if not isinstance(args[0], list):
                raise InterpreterError("len needs an array argument")
            return len(args[0])
        if func == "abs":
            if isinstance(args[0], Secret):
                sv = args[0].value
                negative = self.engine.less_than(sv, self.engine.constant(0))
                negated = self.engine.mul_public(sv, -1)
                return Secret(self.engine.select(negative, negated, sv))
            return abs(args[0])
        if func == "max":
            if isinstance(args[0], list) and any(
                isinstance(v, Secret) for v in args[0]
            ):
                secrets = [self._as_secret(v).value for v in args[0]]
                return Secret(self.engine.maximum(secrets))
            if isinstance(args[0], list):
                return max(args[0])
            return max(args)
        if func == "argmax":
            if isinstance(args[0], list) and any(
                isinstance(v, Secret) for v in args[0]
            ):
                secrets = [self._as_secret(v).value for v in args[0]]
                return Secret(self.engine.argmax(secrets))
            values = args[0]
            return max(range(len(values)), key=values.__getitem__)
        if func == "clip":
            lo = self._require_public(args[1], "clip bound")
            hi = self._require_public(args[2], "clip bound")
            if isinstance(args[0], Secret):
                sv = args[0].value
                lo_c = self.engine.constant(int(lo))
                hi_c = self.engine.constant(int(hi))
                below = self.engine.less_than(sv, lo_c)
                sv = self.engine.select(below, lo_c, sv)
                above = self.engine.less_than(hi_c, sv)
                return Secret(self.engine.select(above, hi_c, sv))
            return min(max(args[0], lo), hi)
        if func in ("exp", "log", "sqrt"):
            value = args[0]
            if isinstance(value, Secret):
                raise InterpreterError(
                    f"{func} over secrets requires the FHE instantiation; the "
                    f"runtime executes the equivalent Gumbel form instead"
                )
            import math

            return getattr(math, func)(value)
        raise InterpreterError(f"unsupported builtin {func!r}")
