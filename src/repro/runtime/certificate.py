"""Query authorization certificates (§5.2).

Before a query runs, the key-generation committee jointly signs a
certificate containing: the public key(s), the query sequence number, a
digest of the query plan, the remaining privacy-budget balance for the
next query's committee, a fresh Merkle root of the registered devices
(pinning the registry prevents "computational grinding" by a Byzantine
aggregator that knows the next random block), and the next random block
itself. The aggregator publishes the certificate; anyone can check that an
honest-majority quorum of the committee signed it.

Signatures are HMAC tags under per-device secrets — the committee's
deterministic-signature stand-in used throughout this reproduction (see
DESIGN.md's substitution table). Verification requires the device-secret
registry, which in the simulation the verifier holds; the structural
property exercised is the real one: a certificate is valid iff a quorum of
the *selected* committee endorsed exactly these contents.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class CertificateBody:
    """The signed contents.

    ``privacy_certificate_digest`` pins the dataflow analyzer's
    :class:`~repro.verify.certificate.PrivacyCertificate` for this plan
    (empty when the executor ran unverified): committees endorsing the
    query thereby endorse one specific privacy proof, and a later swap of
    the proof invalidates every signature.
    """

    query_sequence: int
    public_key_digest: bytes
    plan_digest: bytes
    epsilon_remaining: float
    delta_remaining: float
    registry_root: bytes
    next_block: bytes
    privacy_certificate_digest: bytes = b""

    def digest(self) -> bytes:
        h = hashlib.sha256()
        h.update(self.query_sequence.to_bytes(8, "big"))
        h.update(self.public_key_digest)
        h.update(self.plan_digest)
        h.update(f"{self.epsilon_remaining:.12e}".encode())
        h.update(f"{self.delta_remaining:.12e}".encode())
        h.update(self.registry_root)
        h.update(self.next_block)
        h.update(self.privacy_certificate_digest)
        return h.digest()


@dataclass(frozen=True)
class QueryAuthorizationCertificate:
    """A certificate body plus the committee members' signatures."""

    body: CertificateBody
    committee: Tuple[int, ...]
    signatures: Dict[int, bytes] = field(default_factory=dict)

    def quorum(self) -> int:
        """Signatures needed: an honest majority of the committee."""
        return len(self.committee) // 2 + 1


class CertificateError(Exception):
    """Raised when a certificate fails verification."""


def _sign(secret: bytes, digest: bytes) -> bytes:
    return hmac.new(secret, b"query-auth:" + digest, hashlib.sha256).digest()


def issue_certificate(
    body: CertificateBody,
    committee: Sequence[int],
    member_secrets: Dict[int, bytes],
) -> QueryAuthorizationCertificate:
    """Each committee member signs the body; offline members simply don't."""
    digest = body.digest()
    signatures = {
        member: _sign(member_secrets[member], digest)
        for member in committee
        if member in member_secrets
    }
    return QueryAuthorizationCertificate(body, tuple(committee), signatures)


def verify_certificate(
    certificate: QueryAuthorizationCertificate,
    member_secrets: Dict[int, bytes],
) -> None:
    """Check quorum and signature validity; raises CertificateError.

    A Byzantine aggregator cannot forge this: it would need signatures
    from a majority of a sortition-selected committee, and (OB+MC, §3.1)
    such a majority is honest with overwhelming probability.
    """
    digest = certificate.body.digest()
    valid = 0
    for member, signature in certificate.signatures.items():
        if member not in certificate.committee:
            raise CertificateError(f"signature from non-member {member}")
        secret = member_secrets.get(member)
        if secret is None:
            continue
        if hmac.compare_digest(signature, _sign(secret, digest)):
            valid += 1
        else:
            raise CertificateError(f"invalid signature from member {member}")
    if valid < certificate.quorum():
        raise CertificateError(
            f"only {valid} valid signatures; quorum is {certificate.quorum()}"
        )


def plan_digest(plan_description: str) -> bytes:
    """Digest of the plan the certificate authorizes (committees will only
    execute vignettes of this exact plan)."""
    return hashlib.sha256(plan_description.encode()).digest()
