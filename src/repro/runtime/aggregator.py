"""The aggregator node: upload intake, ZKP verification, Merkle commitments,
homomorphic aggregation, and the committee mailbox (§5.3, §5.4).

The aggregator is untrusted (OB threat model, §3.1): everything it computes
is committed into a Merkle tree whose leaves the participants audit, its
mailbox only ever carries committee payloads it cannot read, and malformed
participant uploads are filtered by their ZKPs before aggregation.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto import paillier
from ..crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from ..crypto.zkp import InputProof, verify as zkp_verify


def _hash_ciphertexts(h: "hashlib._Hash", cts: Sequence[paillier.PaillierCiphertext]) -> None:
    """Feed a ciphertext vector into a hash in the canonical byte layout
    (minimal big-endian encoding per ciphertext, in slot order)."""
    for ct in cts:
        h.update(ct.value.to_bytes((ct.value.bit_length() + 7) // 8 or 1, "big"))


@dataclass
class Upload:
    """One device's submission: ciphertext vector, proof, and (simulation
    only) the witness the proof is checked against — in a deployment the
    SNARK checks the circuit directly and no witness ever leaves the device.
    """

    device_id: int
    ciphertexts: List[paillier.PaillierCiphertext]
    proof: InputProof
    witness: Sequence[int]

    def digest(self) -> bytes:
        h = hashlib.sha256()
        h.update(self.device_id.to_bytes(8, "big"))
        _hash_ciphertexts(h, self.ciphertexts)
        return h.digest()


def ciphertext_vector_digest(cts: Sequence[paillier.PaillierCiphertext]) -> bytes:
    h = hashlib.sha256()
    _hash_ciphertexts(h, cts)
    return h.digest()


@dataclass
class AggregationStatistics:
    """Wall-clock and throughput counters for one query's upload intake.

    These feed ``QueryResult.statistics`` (``repro run --stats``); they are
    observability only and never participate in commitments or results.
    """

    uploads_received: int = 0
    uploads_verified: int = 0
    uploads_rejected: int = 0
    verify_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    ciphertext_additions: int = 0

    @property
    def uploads_verified_per_second(self) -> float:
        if self.verify_seconds <= 0:
            return 0.0
        return self.uploads_verified / self.verify_seconds

    @property
    def uploads_rejected_per_second(self) -> float:
        if self.verify_seconds <= 0:
            return 0.0
        return self.uploads_rejected / self.verify_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "uploads_received": self.uploads_received,
            "uploads_verified": self.uploads_verified,
            "uploads_rejected": self.uploads_rejected,
            "verify_seconds": self.verify_seconds,
            "aggregate_seconds": self.aggregate_seconds,
            "ciphertext_additions": self.ciphertext_additions,
            "uploads_verified_per_second": self.uploads_verified_per_second,
            "uploads_rejected_per_second": self.uploads_rejected_per_second,
        }


@dataclass
class StepCommitment:
    """One audited computation step: a label and the result digest."""

    label: str
    digest: bytes


class AggregatorNode:
    """The coordinator: honest-but-auditable in the simulation.

    Test hooks (``tamper_with_upload``, ``corrupt_step``) let tests exercise
    the Byzantine-aggregator detection paths.
    """

    def __init__(self, public_key: paillier.PaillierPublicKey):
        self.public_key = public_key
        self.uploads: List[Upload] = []
        self.rejected: List[int] = []
        self.steps: List[StepCommitment] = []
        self._step_tree: Optional[MerkleTree] = None
        self.mailbox: Dict[str, List[object]] = {}
        self.stats = AggregationStatistics()

    # ----------------------------------------------------------------- input

    def receive_upload(self, upload: Upload) -> None:
        self.uploads.append(upload)
        self.stats.uploads_received += 1

    def receive_uploads(self, uploads: Sequence[Upload]) -> None:
        """Batched intake: one call per submission round, not per device."""
        self.uploads.extend(uploads)
        self.stats.uploads_received += len(uploads)

    def verify_uploads(self) -> List[Upload]:
        """Check every upload's ZKP; malformed inputs are dropped (§5.3).

        Digest recomputation is batched ahead of the per-upload proof walk
        so one pass hashes all ciphertext vectors; acceptance/rejection
        order is identical to checking each upload in sequence.
        """
        started = time.perf_counter()
        accepted: List[Upload] = []
        digests = [ciphertext_vector_digest(u.ciphertexts) for u in self.uploads]
        for upload, expected_digest in zip(self.uploads, digests):
            if upload.proof.ciphertext_digest != expected_digest:
                self.rejected.append(upload.device_id)
                continue
            if not zkp_verify(upload.proof, upload.witness):
                self.rejected.append(upload.device_id)
                continue
            accepted.append(upload)
        self.stats.verify_seconds += time.perf_counter() - started
        self.stats.uploads_verified += len(accepted)
        self.stats.uploads_rejected = len(self.rejected)
        return accepted

    # ------------------------------------------------------------- aggregate

    def aggregate(self, accepted: Sequence[Upload]) -> List[paillier.PaillierCiphertext]:
        """Homomorphically sum the accepted ciphertext vectors slot-wise.

        Each slot column is reduced with a pairwise tree instead of the old
        O(n·width) sequential fold. Paillier ⊞ is associative, so the tree
        produces byte-identical ciphertexts (and therefore identical step
        commitments) while halving the fold depth per level.
        """
        if not accepted:
            raise ValueError("no accepted uploads to aggregate")
        width = len(accepted[0].ciphertexts)
        if any(len(u.ciphertexts) != width for u in accepted):
            raise ValueError("uploads have inconsistent widths")
        started = time.perf_counter()
        totals = [
            paillier.sum_ciphertexts([u.ciphertexts[j] for u in accepted])
            for j in range(width)
        ]
        self.stats.aggregate_seconds += time.perf_counter() - started
        self.stats.ciphertext_additions += (len(accepted) - 1) * width
        return totals

    # ----------------------------------------------------------------- audit

    def commit_step(self, label: str, digest: bytes) -> None:
        """Record a computation step for later participant audits (§5.3)."""
        self.steps.append(StepCommitment(label, digest))
        self._step_tree = None

    def publish_step_root(self) -> bytes:
        if not self.steps:
            raise ValueError("no steps committed yet")
        if self._step_tree is None:
            leaves = [s.label.encode() + b"\x00" + s.digest for s in self.steps]
            self._step_tree = MerkleTree(leaves)
        return self._step_tree.root

    def answer_audit(self, leaf_index: int) -> Tuple[bytes, InclusionProof]:
        """Return (leaf, inclusion proof) for a participant's challenge."""
        self.publish_step_root()
        return self._step_tree.leaf(leaf_index), self._step_tree.prove(leaf_index)

    def run_audits(self, rng: random.Random, auditors: int, leaves_each: int = 2) -> int:
        """Simulate ``auditors`` devices auditing random leaves; returns the
        number of failed audits (0 for an honest aggregator)."""
        root = self.publish_step_root()
        failures = 0
        for _ in range(auditors):
            for _ in range(leaves_each):
                index = rng.randrange(len(self.steps))
                leaf, proof = self.answer_audit(index)
                if not verify_inclusion(root, leaf, proof):
                    failures += 1
        return failures

    # --------------------------------------------------------------- mailbox

    def post(self, channel: str, message: object) -> None:
        """Committees deposit (encrypted/signed) payloads for the next
        vignette; the aggregator cannot read them (§5.4)."""
        self.mailbox.setdefault(channel, []).append(message)

    def fetch(self, channel: str) -> List[object]:
        return self.mailbox.pop(channel, [])

    # ------------------------------------------------------------ test hooks

    def tamper_with_upload(self, index: int) -> None:
        """Byzantine hook: corrupt a stored upload's first ciphertext."""
        upload = self.uploads[index]
        upload.ciphertexts[0] = paillier.tampered(upload.ciphertexts[0])

    def corrupt_step(self, index: int) -> None:
        """Byzantine hook: rewrite a committed step after publication."""
        self.publish_step_root()
        self.steps[index] = StepCommitment(
            self.steps[index].label, b"\x00" * 32
        )
        # Keep the stale tree: audits now verify against mismatched data.
        tree = self._step_tree

        def answer(leaf_index: int, _tree=tree):
            leaf = (
                self.steps[leaf_index].label.encode()
                + b"\x00"
                + self.steps[leaf_index].digest
            )
            return leaf, _tree.prove(leaf_index)

        self.answer_audit = answer  # type: ignore[method-assign]
