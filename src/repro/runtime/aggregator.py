"""The aggregator node: upload intake, ZKP verification, Merkle commitments,
homomorphic aggregation, and the committee mailbox (§5.3, §5.4).

The aggregator is untrusted (OB threat model, §3.1): everything it computes
is committed into a Merkle tree whose leaves the participants audit, its
mailbox only ever carries committee payloads it cannot read, and malformed
participant uploads are filtered by their ZKPs before aggregation.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto import paillier
from ..crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from ..crypto.zkp import InputProof, verify as zkp_verify


def _hash_ciphertexts(h: "hashlib._Hash", cts: Sequence[paillier.PaillierCiphertext]) -> None:
    """Feed a ciphertext vector into a hash in the canonical byte layout
    (minimal big-endian encoding per ciphertext, in slot order)."""
    for ct in cts:
        h.update(ct.value.to_bytes((ct.value.bit_length() + 7) // 8 or 1, "big"))


@dataclass
class Upload:
    """One device's submission: ciphertext vector, proof, and (simulation
    only) the witness the proof is checked against — in a deployment the
    SNARK checks the circuit directly and no witness ever leaves the device.
    """

    device_id: int
    ciphertexts: List[paillier.PaillierCiphertext]
    proof: InputProof
    witness: Sequence[int]

    def digest(self) -> bytes:
        """Digest over (device id, ciphertext vector), cached.

        Uploads are frozen after construction, so the first computation is
        cached and reused — tree leaves and Merkle commitments digest every
        upload at least twice. The cache is *not* a trust anchor: the
        verify path (:meth:`AggregatorNode.verify_uploads`,
        :func:`repro.runtime.shard.verify_shard`) always recomputes the
        ciphertext digest from the stored ciphertexts, so tampering with
        an upload after its digest was cached is still caught.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            h = hashlib.sha256()
            h.update(self.device_id.to_bytes(8, "big"))
            _hash_ciphertexts(h, self.ciphertexts)
            cached = h.digest()
            self._digest = cached
        return cached


def ciphertext_vector_digest(cts: Sequence[paillier.PaillierCiphertext]) -> bytes:
    h = hashlib.sha256()
    _hash_ciphertexts(h, cts)
    return h.digest()


@dataclass
class AggregationStatistics:
    """Wall-clock and throughput counters for one query's upload intake.

    These feed ``QueryResult.statistics`` (``repro run --stats``); they are
    observability only and never participate in commitments or results.
    """

    uploads_received: int = 0
    uploads_verified: int = 0
    uploads_rejected: int = 0
    verify_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    ciphertext_additions: int = 0

    @property
    def uploads_verified_per_second(self) -> float:
        if self.verify_seconds <= 0:
            return 0.0
        return self.uploads_verified / self.verify_seconds

    @property
    def uploads_rejected_per_second(self) -> float:
        if self.verify_seconds <= 0:
            return 0.0
        return self.uploads_rejected / self.verify_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "uploads_received": self.uploads_received,
            "uploads_verified": self.uploads_verified,
            "uploads_rejected": self.uploads_rejected,
            "verify_seconds": self.verify_seconds,
            "aggregate_seconds": self.aggregate_seconds,
            "ciphertext_additions": self.ciphertext_additions,
            "uploads_verified_per_second": self.uploads_verified_per_second,
            "uploads_rejected_per_second": self.uploads_rejected_per_second,
        }


@dataclass
class StepCommitment:
    """One audited computation step: a label and the result digest."""

    label: str
    digest: bytes


class AggregatorNode:
    """The coordinator: honest-but-auditable in the simulation.

    Test hooks (``tamper_with_upload``, ``corrupt_step``) let tests exercise
    the Byzantine-aggregator detection paths.
    """

    def __init__(self, public_key: paillier.PaillierPublicKey):
        self.public_key = public_key
        self.uploads: List[Upload] = []
        self.rejected: List[int] = []
        self.steps: List[StepCommitment] = []
        self._step_tree: Optional[MerkleTree] = None
        self.mailbox: Dict[str, List[object]] = {}
        self.stats = AggregationStatistics()

    # ----------------------------------------------------------------- input

    def receive_upload(self, upload: Upload) -> None:
        self.uploads.append(upload)
        self.stats.uploads_received += 1

    def receive_uploads(self, uploads: Sequence[Upload]) -> None:
        """Batched intake: one call per submission round, not per device."""
        self.uploads.extend(uploads)
        self.stats.uploads_received += len(uploads)

    def verify_uploads(self) -> List[Upload]:
        """Check every upload's ZKP; malformed inputs are dropped (§5.3).

        Digest recomputation is batched ahead of the per-upload proof walk
        so one pass hashes all ciphertext vectors; acceptance/rejection
        order is identical to checking each upload in sequence.
        """
        started = time.perf_counter()
        accepted: List[Upload] = []
        digests = [ciphertext_vector_digest(u.ciphertexts) for u in self.uploads]
        for upload, expected_digest in zip(self.uploads, digests):
            if upload.proof.ciphertext_digest != expected_digest:
                self.rejected.append(upload.device_id)
                continue
            if not zkp_verify(upload.proof, upload.witness):
                self.rejected.append(upload.device_id)
                continue
            accepted.append(upload)
        self.stats.verify_seconds += time.perf_counter() - started
        self.stats.uploads_verified += len(accepted)
        self.stats.uploads_rejected = len(self.rejected)
        return accepted

    # ------------------------------------------------------------- aggregate

    def aggregate(self, accepted: Sequence[Upload]) -> List[paillier.PaillierCiphertext]:
        """Homomorphically sum the accepted ciphertext vectors slot-wise.

        Each slot column is reduced with a pairwise tree instead of the old
        O(n·width) sequential fold. Paillier ⊞ is associative, so the tree
        produces byte-identical ciphertexts (and therefore identical step
        commitments) while halving the fold depth per level.
        """
        if not accepted:
            raise ValueError("no accepted uploads to aggregate")
        width = len(accepted[0].ciphertexts)
        if any(len(u.ciphertexts) != width for u in accepted):
            raise ValueError("uploads have inconsistent widths")
        started = time.perf_counter()
        totals = [
            paillier.sum_ciphertexts([u.ciphertexts[j] for u in accepted])
            for j in range(width)
        ]
        self.stats.aggregate_seconds += time.perf_counter() - started
        self.stats.ciphertext_additions += (len(accepted) - 1) * width
        return totals

    # ----------------------------------------------------------------- audit

    def commit_step(self, label: str, digest: bytes) -> None:
        """Record a computation step for later participant audits (§5.3)."""
        self.steps.append(StepCommitment(label, digest))
        self._step_tree = None

    def publish_step_root(self) -> bytes:
        if not self.steps:
            raise ValueError("no steps committed yet")
        if self._step_tree is None:
            leaves = [s.label.encode() + b"\x00" + s.digest for s in self.steps]
            self._step_tree = MerkleTree(leaves)
        return self._step_tree.root

    def answer_audit(self, leaf_index: int) -> Tuple[bytes, InclusionProof]:
        """Return (leaf, inclusion proof) for a participant's challenge."""
        self.publish_step_root()
        return self._step_tree.leaf(leaf_index), self._step_tree.prove(leaf_index)

    def run_audits(self, rng: random.Random, auditors: int, leaves_each: int = 2) -> int:
        """Simulate ``auditors`` devices auditing random leaves; returns the
        number of failed audits (0 for an honest aggregator)."""
        root = self.publish_step_root()
        failures = 0
        for _ in range(auditors):
            for _ in range(leaves_each):
                index = rng.randrange(len(self.steps))
                leaf, proof = self.answer_audit(index)
                if not verify_inclusion(root, leaf, proof):
                    failures += 1
        return failures

    # --------------------------------------------------------------- mailbox

    def post(self, channel: str, message: object) -> None:
        """Committees deposit (encrypted/signed) payloads for the next
        vignette; the aggregator cannot read them (§5.4)."""
        self.mailbox.setdefault(channel, []).append(message)

    def fetch(self, channel: str) -> List[object]:
        return self.mailbox.pop(channel, [])

    # ------------------------------------------------------------ test hooks

    def tamper_with_upload(self, index: int) -> None:
        """Byzantine hook: corrupt a stored upload's first ciphertext."""
        upload = self.uploads[index]
        upload.ciphertexts[0] = paillier.tampered(upload.ciphertexts[0])

    def corrupt_step(self, index: int) -> None:
        """Byzantine hook: rewrite a committed step after publication."""
        self.publish_step_root()
        self.steps[index] = StepCommitment(
            self.steps[index].label, b"\x00" * 32
        )
        # Keep the stale tree: audits now verify against mismatched data.
        tree = self._step_tree

        def answer(leaf_index: int, _tree=tree):
            leaf = (
                self.steps[leaf_index].label.encode()
                + b"\x00"
                + self.steps[leaf_index].digest
            )
            return leaf, _tree.prove(leaf_index)

        self.answer_audit = answer  # type: ignore[method-assign]


@dataclass
class TreeNode:
    """One node of the multi-level aggregation tree.

    Leaves (level 0) carry a shard batch's intake: its partial ciphertext
    sums and the leaf digest committing to the accepted uploads in order.
    Internal nodes each wrap an :class:`AggregatorNode` whose step
    commitments record, in child order, the digest of every child plus
    the digest of the folded partial sums — so the node's published step
    root *is* its digest, and auditing any level reproduces the chain of
    inclusion proofs down to the shard leaves.
    """

    level: int
    index: int
    children: List["TreeNode"] = field(default_factory=list)
    partials: Optional[List[paillier.PaillierCiphertext]] = None
    accepted: int = 0
    digest: bytes = b""
    node: Optional[AggregatorNode] = None
    pending_children: int = 0
    folded: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.level == 0


class AggregatorTree:
    """A multi-level aggregation tree over shard-batch leaves (§5.3 at scale).

    The intake/aggregation split of production federated-analytics
    systems: leaves ingest verified shard batches (partial Paillier sums
    plus a commitment to the accepted uploads), internal nodes fold their
    children's partials homomorphically, and every level commits digests
    into the node's Merkle'd step log. The root's partials are the query
    totals; the root's digest commits, transitively, to every accepted
    upload in the run.

    Folding is driven by readiness: :meth:`ingest_leaf` and
    :meth:`fold_node` each return the coordinates of any parent whose
    children just completed, which is exactly the ``fold`` event the
    scheduler then drains. Child order is fixed by construction, so the
    fold result is byte-identical whatever order the leaves arrive in —
    the serial/parallel equivalence the sharded plane is built on.
    """

    def __init__(
        self,
        public_key: paillier.PaillierPublicKey,
        num_leaves: int,
        fanout: int = 16,
    ):
        if num_leaves < 1:
            raise ValueError("an aggregation tree needs at least one leaf")
        if fanout < 2:
            raise ValueError("tree fanout must be at least 2")
        self.public_key = public_key
        self.fanout = fanout
        self.rejected: List[int] = []
        self.stats = AggregationStatistics()
        self.levels: List[List[TreeNode]] = [
            [TreeNode(0, i) for i in range(num_leaves)]
        ]
        while len(self.levels[-1]) > 1:
            below = self.levels[-1]
            level = len(self.levels)
            parents = []
            for index in range(0, len(below), fanout):
                children = below[index : index + fanout]
                parent = TreeNode(
                    level,
                    index // fanout,
                    children=children,
                    node=AggregatorNode(public_key),
                    pending_children=len(children),
                )
                parents.append(parent)
            self.levels.append(parents)
        if len(self.levels) == 1:
            # Single-leaf population: give the root an explicit fold node
            # so totals/audits always go through a committed fold step.
            leaf = self.levels[0][0]
            self.levels.append(
                [
                    TreeNode(
                        1, 0, children=[leaf],
                        node=AggregatorNode(public_key), pending_children=1,
                    )
                ]
            )

    # ---------------------------------------------------------- structure

    @property
    def depth(self) -> int:
        """Number of levels, leaves included."""
        return len(self.levels)

    @property
    def root(self) -> TreeNode:
        return self.levels[-1][0]

    def _parent_of(self, node: TreeNode) -> TreeNode:
        return self.levels[node.level + 1][node.index // self.fanout]

    # ------------------------------------------------------------- intake

    def ingest_leaf(self, result) -> Optional[Tuple[int, int]]:
        """Ingest one shard batch (a ``ShardIntakeResult``) at its leaf.

        Returns the (level, index) of the parent node if this leaf was
        the last child it was waiting for — the scheduler turns that into
        a ``fold`` event — else ``None``.
        """
        leaf = self.levels[0][result.shard_id]
        if leaf.folded:
            raise ValueError(f"leaf {result.shard_id} ingested twice")
        leaf.partials = result.partials
        leaf.accepted = result.accepted
        leaf.digest = result.leaf_digest
        leaf.folded = True
        self.rejected.extend(result.rejected)
        stats = self.stats
        stats.uploads_received += result.uploads_received
        stats.uploads_verified += result.accepted
        stats.uploads_rejected += len(result.rejected)
        stats.verify_seconds += result.verify_seconds
        stats.aggregate_seconds += result.aggregate_seconds
        stats.ciphertext_additions += result.ciphertext_additions
        parent = self._parent_of(leaf)
        parent.pending_children -= 1
        if parent.pending_children == 0:
            return (parent.level, parent.index)
        return None

    def fold_node(self, level: int, index: int) -> Optional[Tuple[int, int]]:
        """Fold one internal node whose children are all complete.

        Commits every child's digest, then the folded partials' digest,
        into the node's step log; the published step root becomes the
        node's digest. Returns the parent's coordinates when this fold
        completed it, else ``None``.
        """
        tree_node = self.levels[level][index]
        if tree_node.is_leaf or tree_node.node is None:
            raise ValueError(f"node ({level},{index}) is not an internal node")
        if tree_node.pending_children:
            raise ValueError(
                f"node ({level},{index}) still waits on {tree_node.pending_children} children"
            )
        if tree_node.folded:
            raise ValueError(f"node ({level},{index}) folded twice")
        started = time.perf_counter()
        for child in tree_node.children:
            tree_node.node.commit_step(
                f"child/{child.level}.{child.index}", child.digest
            )
        columns = [c.partials for c in tree_node.children if c.partials]
        if columns:
            width = len(columns[0])
            if any(len(col) != width for col in columns):
                raise ValueError("children carry inconsistent partial widths")
            tree_node.partials = [
                paillier.sum_ciphertexts([col[j] for col in columns])
                for j in range(width)
            ]
            self.stats.ciphertext_additions += (len(columns) - 1) * width
            fold_digest = ciphertext_vector_digest(tree_node.partials)
        else:
            fold_digest = hashlib.sha256(b"empty-fold").digest()
        tree_node.accepted = sum(c.accepted for c in tree_node.children)
        tree_node.node.commit_step("fold", fold_digest)
        tree_node.digest = tree_node.node.publish_step_root()
        tree_node.folded = True
        self.stats.aggregate_seconds += time.perf_counter() - started
        if level + 1 < len(self.levels):
            parent = self._parent_of(tree_node)
            parent.pending_children -= 1
            if parent.pending_children == 0:
                return (parent.level, parent.index)
        return None

    def totals(self) -> List[paillier.PaillierCiphertext]:
        """The root's folded partial sums (the query's encrypted totals)."""
        if not self.root.folded:
            raise ValueError("the root has not folded yet")
        if self.root.partials is None:
            raise ValueError("every upload was rejected; no totals to publish")
        return self.root.partials

    # -------------------------------------------------------------- audits

    def audit_path(self, leaf_index: int) -> List[Tuple[TreeNode, int]]:
        """The chain of (internal node, child position) from root to leaf."""
        path: List[Tuple[TreeNode, int]] = []
        node = self.root
        target = self.levels[0][leaf_index]
        while not node.is_leaf:
            for position, child in enumerate(node.children):
                lo = child.index * (self.fanout ** child.level)
                hi = (child.index + 1) * (self.fanout ** child.level)
                if lo <= leaf_index < hi:
                    path.append((node, position))
                    node = child
                    break
            else:
                raise ValueError(f"leaf {leaf_index} unreachable from the root")
        if node is not target:
            raise ValueError(f"audit path ended at the wrong leaf {node.index}")
        return path

    def verify_leaf_inclusion(self, leaf_index: int) -> bool:
        """Reproduce the inclusion-proof chain root → shard leaf.

        At every internal node on the path, the child's committed digest
        must (a) carry a valid Merkle inclusion proof against the node's
        published step root and (b) equal the child's actual digest — so
        a rewritten fold or a substituted shard batch fails the audit at
        the level where it happened.
        """
        for node, position in self.audit_path(leaf_index):
            leaf_bytes, proof = node.node.answer_audit(position)
            if not verify_inclusion(node.node.publish_step_root(), leaf_bytes, proof):
                return False
            child = node.children[position]
            expected = f"child/{child.level}.{child.index}".encode() + b"\x00" + child.digest
            if leaf_bytes != expected:
                return False
        return True

    def run_audits(self, rng: random.Random, auditors: int, leaves_each: int = 2) -> int:
        """Simulate participant audits over the whole tree; returns failures.

        Each auditor alternates two checks: a full root→leaf inclusion
        chain for a random shard leaf, and a random step of a randomly
        chosen *internal* node (exercising per-level commitments directly,
        including fold steps).
        """
        if not self.root.folded:
            raise ValueError("cannot audit before the root folds")
        failures = 0
        num_leaves = len(self.levels[0])
        for _ in range(auditors):
            for _ in range(leaves_each):
                leaf_index = rng.randrange(num_leaves)
                if not self.verify_leaf_inclusion(leaf_index):
                    failures += 1
                level = 1 + rng.randrange(len(self.levels) - 1)
                node = self.levels[level][rng.randrange(len(self.levels[level]))]
                step_index = rng.randrange(len(node.node.steps))
                leaf_bytes, proof = node.node.answer_audit(step_index)
                if not verify_inclusion(
                    node.node.publish_step_root(), leaf_bytes, proof
                ):
                    failures += 1
        return failures
