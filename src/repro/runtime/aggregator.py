"""The aggregator node: upload intake, ZKP verification, Merkle commitments,
homomorphic aggregation, and the committee mailbox (§5.3, §5.4).

The aggregator is untrusted (OB threat model, §3.1): everything it computes
is committed into a Merkle tree whose leaves the participants audit, its
mailbox only ever carries committee payloads it cannot read, and malformed
participant uploads are filtered by their ZKPs before aggregation.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto import paillier
from ..crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from ..crypto.zkp import InputProof, verify as zkp_verify


@dataclass
class Upload:
    """One device's submission: ciphertext vector, proof, and (simulation
    only) the witness the proof is checked against — in a deployment the
    SNARK checks the circuit directly and no witness ever leaves the device.
    """

    device_id: int
    ciphertexts: List[paillier.PaillierCiphertext]
    proof: InputProof
    witness: Sequence[int]

    def digest(self) -> bytes:
        h = hashlib.sha256()
        h.update(self.device_id.to_bytes(8, "big"))
        for ct in self.ciphertexts:
            h.update(ct.value.to_bytes((ct.value.bit_length() + 7) // 8 or 1, "big"))
        return h.digest()


def ciphertext_vector_digest(cts: Sequence[paillier.PaillierCiphertext]) -> bytes:
    h = hashlib.sha256()
    for ct in cts:
        h.update(ct.value.to_bytes((ct.value.bit_length() + 7) // 8 or 1, "big"))
    return h.digest()


@dataclass
class StepCommitment:
    """One audited computation step: a label and the result digest."""

    label: str
    digest: bytes


class AggregatorNode:
    """The coordinator: honest-but-auditable in the simulation.

    Test hooks (``tamper_with_upload``, ``corrupt_step``) let tests exercise
    the Byzantine-aggregator detection paths.
    """

    def __init__(self, public_key: paillier.PaillierPublicKey):
        self.public_key = public_key
        self.uploads: List[Upload] = []
        self.rejected: List[int] = []
        self.steps: List[StepCommitment] = []
        self._step_tree: Optional[MerkleTree] = None
        self.mailbox: Dict[str, List[object]] = {}

    # ----------------------------------------------------------------- input

    def receive_upload(self, upload: Upload) -> None:
        self.uploads.append(upload)

    def verify_uploads(self) -> List[Upload]:
        """Check every upload's ZKP; malformed inputs are dropped (§5.3)."""
        accepted: List[Upload] = []
        for upload in self.uploads:
            expected_digest = ciphertext_vector_digest(upload.ciphertexts)
            if upload.proof.ciphertext_digest != expected_digest:
                self.rejected.append(upload.device_id)
                continue
            if not zkp_verify(upload.proof, upload.witness):
                self.rejected.append(upload.device_id)
                continue
            accepted.append(upload)
        return accepted

    # ------------------------------------------------------------- aggregate

    def aggregate(self, accepted: Sequence[Upload]) -> List[paillier.PaillierCiphertext]:
        """Homomorphically sum the accepted ciphertext vectors slot-wise."""
        if not accepted:
            raise ValueError("no accepted uploads to aggregate")
        width = len(accepted[0].ciphertexts)
        if any(len(u.ciphertexts) != width for u in accepted):
            raise ValueError("uploads have inconsistent widths")
        totals = list(accepted[0].ciphertexts)
        for upload in accepted[1:]:
            totals = [
                paillier.add_ciphertexts(a, b)
                for a, b in zip(totals, upload.ciphertexts)
            ]
        return totals

    # ----------------------------------------------------------------- audit

    def commit_step(self, label: str, digest: bytes) -> None:
        """Record a computation step for later participant audits (§5.3)."""
        self.steps.append(StepCommitment(label, digest))
        self._step_tree = None

    def publish_step_root(self) -> bytes:
        if not self.steps:
            raise ValueError("no steps committed yet")
        if self._step_tree is None:
            leaves = [s.label.encode() + b"\x00" + s.digest for s in self.steps]
            self._step_tree = MerkleTree(leaves)
        return self._step_tree.root

    def answer_audit(self, leaf_index: int) -> Tuple[bytes, InclusionProof]:
        """Return (leaf, inclusion proof) for a participant's challenge."""
        self.publish_step_root()
        return self._step_tree.leaf(leaf_index), self._step_tree.prove(leaf_index)

    def run_audits(self, rng: random.Random, auditors: int, leaves_each: int = 2) -> int:
        """Simulate ``auditors`` devices auditing random leaves; returns the
        number of failed audits (0 for an honest aggregator)."""
        root = self.publish_step_root()
        failures = 0
        for _ in range(auditors):
            for _ in range(leaves_each):
                index = rng.randrange(len(self.steps))
                leaf, proof = self.answer_audit(index)
                if not verify_inclusion(root, leaf, proof):
                    failures += 1
        return failures

    # --------------------------------------------------------------- mailbox

    def post(self, channel: str, message: object) -> None:
        """Committees deposit (encrypted/signed) payloads for the next
        vignette; the aggregator cannot read them (§5.4)."""
        self.mailbox.setdefault(channel, []).append(message)

    def fetch(self, channel: str) -> List[object]:
        return self.mailbox.pop(channel, [])

    # ------------------------------------------------------------ test hooks

    def tamper_with_upload(self, index: int) -> None:
        """Byzantine hook: corrupt a stored upload's first ciphertext."""
        upload = self.uploads[index]
        upload.ciphertexts[0] = paillier.tampered(upload.ciphertexts[0])

    def corrupt_step(self, index: int) -> None:
        """Byzantine hook: rewrite a committed step after publication."""
        self.publish_step_root()
        self.steps[index] = StepCommitment(
            self.steps[index].label, b"\x00" * 32
        )
        # Keep the stale tree: audits now verify against mismatched data.
        tree = self._step_tree

        def answer(leaf_index: int, _tree=tree):
            leaf = (
                self.steps[leaf_index].label.encode()
                + b"\x00"
                + self.steps[leaf_index].digest
            )
            return leaf, _tree.prove(leaf_index)

        self.answer_audit = answer  # type: ignore[method-assign]
