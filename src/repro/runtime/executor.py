"""End-to-end query execution (§5).

The executor drives a chosen plan through the full Arboretum protocol on a
simulated (small-scale) deployment:

1. **Setup** — sortition selects committees from the current public block
   (§5.1); the first committee generates the keypair, checks the privacy
   budget, signs the query authorization certificate, and jointly samples
   the next round's random block (§5.2).
2. **Input** — every device one-hot encodes its datum (placing it in a
   random ciphertext bin when the plan samples, §6), encrypts under the
   committee's public key, and uploads with a well-formedness ZKP; the
   aggregator drops malformed uploads (§5.3).
3. **Processing** — the aggregator homomorphically sums the accepted
   uploads and commits every step to a Merkle tree that participants
   audit; decryption committees receive the key via VSR and turn the
   aggregate into MPC sharings; the remaining program runs in committee
   MPC via the secure interpreter, with the exponential mechanism fanned
   out across noising committees and an argmax tree (§5.4, Fig 5).
4. **Output** — the final committee declassifies only the mechanism's
   result, which the aggregator publishes (§5.5).

Plans whose ``em`` chose the FHE exponentiation instantiation execute via
the Gumbel-noise form, which samples from the *identical* distribution
(the Gumbel-max trick) — see DESIGN.md's substitution table.

Fault tolerance
---------------

When a :class:`~repro.faults.FaultInjector` is attached, the run is split
into named phases (``keygen``, ``input``, ``decrypt``, ``program``), each
wrapped in a round-timeout/retry loop: an injected crash, long straggle,
equivocation, or VSR quorum loss fails the phase, the executor backs off
and replays it against the next committee from the pool (the §5.1
fallback of moving a task to committee i+1 mod c). Committees parked with
live secrets (the keygen committee holding the Paillier key limbs)
survive member churn via Shamir threshold recovery
(:meth:`Committee.recover_shares`). Every value-relevant random draw in a
chaos run comes from a labelled substream of the injector's master seed
rather than from global stream position, so a recovered run releases a
result *bit-identical* to its fault-free twin; once the schedule exceeds
what §5.1 tolerates the executor raises a typed
:class:`~repro.faults.UnrecoverableFault` carrying the full event log —
never a hang, never a silently wrong answer.

Durability
----------

Committee churn is survivable in-memory, but the coordinator process
itself dying is not: attach an
:class:`~repro.runtime.journal.ExecutionJournal` and every
``_checkpoint()`` boundary becomes durable — phase label, committee
allocations, labelled RNG stream positions, sealed held-secret state,
budget charges (write-ahead, keyed by label), and the fault event log,
each record chained by SHA-256. A scheduled
:data:`~repro.faults.COORDINATOR_CRASH` kills the run with a typed
:class:`~repro.faults.CoordinatorCrash`; a fresh incarnation built from
the journal manifest replays deterministically, verifying each
checkpoint against the journaled record (divergence is a typed error,
never a silently different answer), absorbs the recorded death, and
continues — releasing a ``QueryResult`` byte-identical to the
uninterrupted run with the accountant charged exactly once per label.
"""

from __future__ import annotations

import hashlib
import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..crypto import paillier
from ..crypto.backend import active_backend_name
from ..crypto.sortition import jointly_generate_block
from ..crypto.vsr import VSRError
from ..crypto.zkp import one_hot_statement, prove, range_statement
from ..faults import (
    PENDING,
    RECOVERED,
    RESTORE,
    TOLERATED,
    UNDETECTED,
    UNRECOVERABLE,
    CoordinatorCrash,
    EventLog,
    FaultInjector,
    InjectedFailure,
    UnrecoverableFault,
)
from ..mpc.engine import CheatingDetected, SecretValue
from ..mpc.protocols import (
    FIXPOINT_SCALE,
    shared_gumbel_noise,
    shared_laplace_noise,
)
from ..planner.expand import Choice
from ..planner.search import PlanningResult
from ..privacy.accountant import PrivacyAccountant, PrivacyCost
from ..privacy.sampling import BinSamplingPlan
from .aggregator import AggregatorNode, Upload, ciphertext_vector_digest
from .packing import SlotPacking, plan_packing
from .certificate import (
    CertificateBody,
    QueryAuthorizationCertificate,
    issue_certificate,
    plan_digest,
    verify_certificate,
)
from .committee import (
    Committee,
    CommitteeError,
    CommitteePool,
    bigint_to_limbs,
    limbs_to_bigint,
)
from .interp import MechanismHooks, Secret, SecureInterpreter
from .journal import ExecutionJournal, payload_digest
from .network import FederatedNetwork

#: Failures the phase-retry loop knows how to recover from by failing the
#: task over to a fresh committee and replaying. Everything else (budget
#: rejection, pool exhaustion, genuine protocol corruption) propagates.
RECOVERABLE_FAULTS = (InjectedFailure, CheatingDetected, VSRError)


class QueryRejected(Exception):
    """Raised when the keygen committee refuses the query (budget)."""


class BudgetExhausted(QueryRejected):
    """The refusal was a privacy-budget shortfall specifically.

    A subclass so existing ``except QueryRejected`` sites keep working;
    the service layer and :meth:`AnalyticsSession.ask` raise/propagate
    this typed form so callers can distinguish "the budget is gone" from
    other admission failures without string-matching the message.
    """


class ExecutionError(Exception):
    """Raised when the protocol cannot complete."""


@dataclass
class RuntimeStatistics:
    """Observability counters for one executed query (``repro run --stats``).

    Mirrors ``PlannerStatistics`` on the execution side: wall-clock and
    throughput numbers for the hot data-plane stages. Statistics never
    influence results, commitments, or accounting — they are excluded from
    ``QueryResult`` equality so legacy/vectorized equivalence is unaffected.
    """

    data_plane: str = "vectorized"
    #: Name of the active crypto kernel backend (``crypto/backend.py``):
    #: ``pure`` or ``accel``. Informational only — backends are
    #: bit-identical by construction, so results never depend on it.
    crypto_backend: str = ""
    logical_width: int = 0
    packed_width: int = 0
    packing_lanes: int = 1
    uploads_submitted: int = 0
    submit_seconds: float = 0.0
    uploads_verified: int = 0
    uploads_rejected: int = 0
    verify_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    ciphertext_additions: int = 0
    uploads_verified_per_second: float = 0.0
    uploads_rejected_per_second: float = 0.0
    decrypt_seconds: float = 0.0
    #: Sharded-plane counters (zero on the flat planes).
    shards: int = 0
    shard_size: int = 0
    tree_depth: int = 0
    scheduler_workers: int = 0
    scheduler_events: int = 0
    scheduler_batches: int = 0
    scheduler_max_batch: int = 0
    #: Durable-journal counters (``repro run --journal`` / ``repro resume``).
    checkpoints: int = 0
    journal_records: int = 0
    journal_replayed: int = 0
    resume_events: int = 0

    def as_dict(self) -> Dict[str, object]:
        return dict(vars(self))


@dataclass
class QueryResult:
    """The outcome of one executed query."""

    outputs: List[object]
    rejected_devices: List[int]
    audits_failed: int
    committees_used: int
    epsilon_charged: float
    events: List[str] = field(default_factory=list)
    authorization: Optional[QueryAuthorizationCertificate] = None
    #: Present only for chaos runs: the injected-fault/recovery ledger.
    fault_log: Optional[EventLog] = None
    #: Data-plane observability; never part of result equality.
    statistics: Optional[RuntimeStatistics] = field(
        default=None, compare=False, repr=False
    )

    @property
    def value(self) -> object:
        return self.outputs[0] if self.outputs else None


@dataclass
class _HeldSecrets:
    """A committee parked mid-run with secret shares later phases need.

    If members of such a committee churn, failover alone cannot help — a
    fresh committee would not hold the secrets — so the recovery runtime
    re-shares the vectors among the survivors instead
    (:meth:`Committee.recover_shares`).
    """

    committee: Committee
    vectors: Dict[str, List[SecretValue]]


def hashlib_sha256_int(value: int) -> bytes:
    """Digest of a big integer (used for public-key fingerprints)."""
    width = (value.bit_length() + 7) // 8 or 1
    return hashlib.sha256(value.to_bytes(width, "big")).digest()


class QueryExecutor:
    """Runs one planned query over a simulated network."""

    def __init__(
        self,
        network: FederatedNetwork,
        planning: PlanningResult,
        committee_size: int = 5,
        key_prime_bits: int = 128,
        rng: Optional[random.Random] = None,
        accountant: Optional[PrivacyAccountant] = None,
        verify_plan: bool = True,
        faults: Optional[FaultInjector] = None,
        max_phase_retries: int = 3,
        data_plane: str = "vectorized",
        journal: Optional[ExecutionJournal] = None,
        shard_size: int = 1024,
        shard_workers: int = 0,
        tree_fanout: int = 16,
        charge_label: Optional[str] = None,
    ):
        if data_plane not in ("vectorized", "legacy", "sharded"):
            raise ValueError(
                f"unknown data plane {data_plane!r}; expected 'vectorized', "
                "'legacy', or 'sharded'"
            )
        if shard_size < 1:
            raise ValueError("shard_size must be positive")
        self.network = network
        self.planning = planning
        self.verify_plan = verify_plan
        self.logical = planning.logical_plan
        self.env = self.logical.env
        self.committee_size = committee_size
        self.key_prime_bits = key_prime_bits
        # Default to a stream forked off the network's: the executor must
        # never run from an unseeded generator (reproducibility, R2 lint).
        self.rng = rng if rng is not None else random.Random(network.rng.getrandbits(64))
        self.accountant = accountant
        self.faults = faults
        self.max_phase_retries = max_phase_retries
        self.events: List[str] = []
        self.pool: Optional[CommitteePool] = None
        self.certificate: Optional[QueryAuthorizationCertificate] = None
        self._select_choice = self._find_choice("select_max")
        self._input_choice = self._find_choice("input")
        self._budget_charged = False
        #: Label the budget debit is keyed by. Defaults to the query name;
        #: the multi-tenant service overrides it per submission so a plan
        #: served from the keyed cache (whose logical plan keeps the
        #: original query name) still charges exactly once per submission.
        self.charge_label = (
            charge_label if charge_label is not None else self.logical.query_name
        )
        self._held_secrets: List[_HeldSecrets] = []
        self._keygen_committee: Optional[Committee] = None
        self._key_shares: Optional[Dict[str, List[SecretValue]]] = None
        self._noise_seq = 0
        self._laplace_seq = 0
        self.data_plane = data_plane
        self.shard_size = shard_size
        self.shard_workers = max(0, int(shard_workers))
        self.tree_fanout = tree_fanout
        #: Master seed of the sharded plane's labelled substreams. Drawn
        #: once at construction (sharded mode only, so flat planes keep
        #: their exact draw schedules) from the executor's seeded rng —
        #: deterministic across resume incarnations, and independent of
        #: worker count because per-shard streams derive from it by label,
        #: never from shared stream position.
        self._shard_seed: Optional[int] = (
            self.rng.getrandbits(64) if data_plane == "sharded" else None
        )
        self._packing: Optional[SlotPacking] = None
        #: Durable write-ahead journal; a loaded journal puts the run in
        #: resume mode (replay-verify to the last intact record, then
        #: continue appending). See runtime/journal.py.
        self.journal = journal
        self._checkpoint_seq = 0
        self._rng_labels: List[str] = []
        self._journaled_rng_labels = 0
        #: Charges made at their in-order execution point this incarnation
        #: (part of every checkpoint payload, so replay must reproduce it).
        self._charges: Dict[str, Tuple[float, float]] = {}
        #: Ledger restored from the journal: labels prior incarnations
        #: already paid for. Consulted by the charge site, never placed in
        #: a checkpoint payload ahead of its original execution point.
        self._restored_charges: Dict[str, Tuple[float, float]] = {}
        self.statistics = RuntimeStatistics(
            data_plane=data_plane, crypto_backend=active_backend_name()
        )
        #: The validated dataflow PrivacyCertificate for this run (set by
        #: the verify gate; its digest is folded into the signed
        #: CertificateBody so committees endorse the privacy proof too).
        self.privacy_certificate = getattr(planning, "privacy_certificate", None)

    # ------------------------------------------------------------- plumbing

    def _find_choice(self, op_prefix: str) -> Optional[Choice]:
        plan = self.planning.plan
        if plan is None:
            return None
        for choice in getattr(plan, "choice_list", []) or []:
            if choice.key.startswith(op_prefix):
                return choice
        return None

    def _log(self, message: str) -> None:
        self.events.append(message)

    def _allocate(self, name: str) -> Committee:
        committee = self.pool.allocate(name)
        if self.faults is not None:
            phase = self.faults.current_phase
            if phase is not None:
                # Symbolic fault targets like "keygen#1" name members of
                # the *first* committee a phase allocated.
                self.faults.note_allocation(phase, committee)
        self._checkpoint(f"allocate/{name}")
        return committee

    def _fresh(self, label: str) -> random.Random:
        """The stream backing one value-relevant draw.

        In a chaos run this is the injector's labelled substream — stable
        across phase replays, so recovery re-derives identical noise, bin
        placements, and sampling offsets. Without an injector it is the
        executor's own rng, keeping the legacy path bit-compatible. Every
        label is recorded in order so journal checkpoints can attest to
        the RNG stream positions the run has consumed.
        """
        self._rng_labels.append(label)
        if self.faults is None:
            return self.rng
        return self.faults.fresh(label)

    def _shard_stream(self, label: str) -> random.Random:
        """A labelled substream for one unit of sharded-plane work.

        Unlike :meth:`_fresh`, the fault-free path does *not* fall back to
        the executor's shared rng: every shard's stream is derived from
        the plane's master seed by label, so the draw schedule is a pure
        function of (seed, label) — identical whether shards execute
        serially or on a worker pool, which is the root of the sharded
        plane's serial-oracle equivalence. Chaos runs derive from the
        injector instead, keeping recovery replays bit-identical. Streams
        are always derived on the scheduler's serial path (event post /
        serial handlers), never inside a worker, so the label attestation
        order is deterministic too.
        """
        self._rng_labels.append(label)
        if self.faults is not None:
            return self.faults.fresh(label)
        from ..faults import derive_stream_seed

        return random.Random(derive_stream_seed(self._shard_seed, label))

    def _checkpoint(self, label: str) -> None:
        """A named execution boundary: journal record, then armed faults.

        When a journal is attached, the full recovery-relevant state
        (allocations, RNG labels, sealed held secrets, charges, fault
        log) is made durable *before* any fault may fire, so a process
        death at this exact point loses nothing. A scheduled
        coordinator-crash event then fires here — unless a crash record
        from a previous incarnation absorbs it, which is how a resumed
        run sails past its own death point.
        """
        seq = self._checkpoint_seq
        self._checkpoint_seq += 1
        self.statistics.checkpoints = self._checkpoint_seq
        if self.journal is not None:
            replayed = self.journal.checkpoint(self._checkpoint_payload(seq, label))
            if replayed:
                self.statistics.journal_replayed += 1
            self.statistics.journal_records = self.journal.record_count
        if self.faults is not None:
            while True:
                event = self.faults.take_coordinator_crash(label, seq)
                if event is None:
                    break
                if self.journal is not None and self.journal.consume_crash(seq, label):
                    # This incarnation is the resume of exactly this death.
                    # Surfaced via statistics only: the released QueryResult
                    # must stay byte-identical to the uninterrupted run.
                    self.statistics.resume_events += 1
                    continue
                if self.journal is not None:
                    self.journal.record_crash(seq, label, event.as_dict())
                raise CoordinatorCrash(
                    f"coordinator process died at checkpoint {seq} ({label})"
                    + (
                        f"; resume from journal {self.journal.path}"
                        if self.journal is not None
                        else "; no journal was attached, the run is lost"
                    ),
                    event=event,
                    checkpoint=label,
                    checkpoint_seq=seq,
                    journal_path=self.journal.path if self.journal else None,
                )
            self.faults.maybe_fail()

    def _checkpoint_payload(self, seq: int, label: str) -> Dict[str, object]:
        """Everything a checkpoint record attests to, JSON-canonical.

        The RNG stream attestation stores the labels drawn *since the
        previous checkpoint* plus a rolling digest over all labels so far:
        full information across the journal without quadratic growth.
        """
        digest = hashlib.sha256()
        for drawn in self._rng_labels:
            digest.update(drawn.encode("utf-8"))
            digest.update(b";")
        new_labels = self._rng_labels[self._journaled_rng_labels :]
        self._journaled_rng_labels = len(self._rng_labels)
        return {
            "seq": seq,
            "label": label,
            "phase": self.faults.current_phase if self.faults is not None else None,
            "allocations": [
                {"name": c.name, "members": list(c.members)}
                for c in (self.pool.allocated if self.pool is not None else [])
            ],
            "rng_streams": {
                "count": len(self._rng_labels),
                "digest": digest.hexdigest(),
                "new_labels": new_labels,
            },
            "held_secrets": self._sealed_held_secrets(),
            "charges": {
                label_: {"epsilon": eps, "delta": delta}
                for label_, (eps, delta) in sorted(self._charges.items())
            },
            "events": self.faults.log.as_dict() if self.faults is not None else None,
        }

    def _sealed_held_secrets(self) -> List[Dict[str, object]]:
        """Commitments to the live secrets parked with mid-run committees.

        The journal must never hold key material, so each held vector is
        *sealed*: a SHA-256 digest over its Shamir share points. The
        digest is replay-stable (shares derive from the executor's seeded
        rng) and lets a resumed run prove it reconstructed the identical
        secret state without the journal ever learning it.
        """
        sealed: List[Dict[str, object]] = []
        for held in self._held_secrets:
            hasher = hashlib.sha256()
            widths: Dict[str, int] = {}
            for name in sorted(held.vectors):
                vector = held.vectors[name]
                widths[name] = len(vector)
                for value in vector:
                    for pid in sorted(value.shares):
                        share = value.shares[pid]
                        hasher.update(
                            f"{name}/{pid}/{share.x}/{share.y};".encode("utf-8")
                        )
            sealed.append(
                {
                    "committee": held.committee.name,
                    "members": list(held.committee.members),
                    "vectors": widths,
                    "seal": hasher.hexdigest(),
                }
            )
        return sealed

    # ------------------------------------------------------ phase machinery

    def _phase(self, label: str, fn: Callable[[], object]) -> object:
        """Run one protocol phase under the fault-recovery contract.

        Recoverable failures (round timeouts, detected cheating, lost VSR
        quorums) trigger a bounded retry: exponential backoff, then the
        phase replays from scratch — allocations inside ``fn`` naturally
        fail over to the next committee in the pool. Exhausting the retry
        budget or the pool itself raises :class:`UnrecoverableFault` with
        the full event log attached.
        """
        if self.faults is None:
            return fn()
        inj = self.faults
        inj.begin_phase(label)
        attempt = 0
        while True:
            attempt += 1
            try:
                self._apply_population_faults(label)
                result = fn()
            except CommitteeError as exc:
                inj.log.resolve_phase(
                    label,
                    UNRECOVERABLE,
                    recovery=f"recovery attempted and failed: {exc}",
                )
                inj.finish()
                raise UnrecoverableFault(
                    f"phase {label!r} cannot recover: {exc}", inj.log
                ) from exc
            except RECOVERABLE_FAULTS as exc:
                if attempt > self.max_phase_retries:
                    inj.log.resolve_phase(
                        label,
                        UNRECOVERABLE,
                        recovery=f"retry budget ({self.max_phase_retries}) exhausted",
                    )
                    inj.finish()
                    raise UnrecoverableFault(
                        f"phase {label!r} failed after {attempt} attempts: {exc}",
                        inj.log,
                    ) from exc
                inj.backoff(attempt)
                self._log(
                    f"phase {label}: {type(exc).__name__}: {exc}; backing off "
                    f"and replaying with a fresh committee (attempt {attempt + 1})"
                )
                continue
            if attempt > 1:
                inj.log.resolve_phase(
                    label,
                    RECOVERED,
                    recovery="task failed over to the next committee and the "
                    "phase was replayed (§5.1)",
                )
            return result

    def _apply_population_faults(self, phase: str) -> None:
        """Consume this phase's churn events (idempotent across replays)."""
        inj = self.faults
        for event in inj.population_events(phase):
            devices = inj.resolve_devices(event)
            if event.kind == RESTORE:
                self.network.restore(devices)
                inj.log.record(
                    event,
                    detection=f"devices {devices} re-announced themselves",
                    recovery="restored to the population; eligible for future "
                    "committees, no replay needed",
                    outcome=TOLERATED,
                )
                continue
            self.network.take_offline(devices)
            rec = inj.log.record(
                event,
                detection=f"devices {devices} stopped responding "
                "(missed round heartbeat)",
                recovery=PENDING,
            )
            self._recover_held_secrets(devices, rec)

    def _recover_held_secrets(self, devices: List[int], rec) -> None:
        """Re-share live secrets held by committees the churn just hit."""
        lost = set(devices)
        for held in self._held_secrets:
            committee = held.committee
            departed = [m for m in committee.members if m in lost]
            if not departed:
                continue
            before = committee.size
            # CommitteeError (survivors below the reconstruction quorum)
            # propagates to the phase machinery: the key material is gone
            # for good, which is exactly the unrecoverable case.
            held.vectors.update(
                committee.recover_shares(held.vectors, departed, self.rng)
            )
            limbs = sum(len(v) for v in held.vectors.values())
            rec.recovery = (
                f"{committee.size} of {before} members of the "
                f"{committee.name!r} committee re-shared {limbs} live secret "
                "limbs among themselves (Shamir threshold recovery)"
            )
            rec.outcome = RECOVERED
            self._log(
                f"recovered {committee.name} shares after losing {departed}"
            )
        if rec.outcome == PENDING:
            rec.recovery = (
                "no committee holding live secrets was affected; §5.1 "
                "sizing absorbs the churn"
            )
            rec.outcome = TOLERATED

    def _vsr_send(
        self,
        sender: Committee,
        values: List[SecretValue],
        recipient: Committee,
    ) -> List[SecretValue]:
        """VSR transfer, with the lost-message fault path threaded through."""
        if self.faults is None:
            return sender.send_via_vsr(values, recipient)
        event = self.faults.take_vsr_loss()
        if event is None:
            return sender.send_via_vsr(values, recipient)
        lost_dealer = sender.members[0]
        rec = self.faults.log.record(
            event,
            detection=f"dealer {lost_dealer}'s redistribution message never "
            "arrived (mailbox timeout)",
            recovery=PENDING,
        )
        out = sender.send_via_vsr(
            values, recipient, exclude_members=[lost_dealer]
        )
        rec.recovery = (
            f"reconstructed from a surviving quorum of "
            f"{sender.threshold + 1} dealers (VSR tolerates missing messages)"
        )
        rec.outcome = RECOVERED
        return out

    # ------------------------------------------------------------------ run

    def run(self) -> QueryResult:
        if self.verify_plan:
            # Gate: refuse to execute a plan that fails static verification
            # (a tampered certificate, an unsound vignette sequence, ...).
            # The accountant is deliberately NOT consulted here — budget
            # exhaustion must keep raising QueryRejected, not a verify error.
            from ..verify import verify_planning_result

            verify_planning_result(self.planning).raise_if_failed()
            self._validate_privacy_certificate()
        if self.journal is not None:
            self._restore_from_journal()
        n = len(self.network)
        m = self.committee_size
        max_committees = max(1, n // m)
        if self.data_plane == "sharded":
            # Million-device populations do not need hundreds of thousands
            # of standby committees; cap the pool (the paper provisions a
            # small constant number of committees regardless of N, §5.1).
            # Applied to the sharded plane only so the flat planes' byte
            # streams are untouched; below 64·m devices the cap is inert,
            # so small chaos deployments keep their committee structure.
            max_committees = max(1, min(max_committees, 64))
        assignment = self.network.select_committees(max_committees, m)
        round_hook = self.faults.on_round if self.faults is not None else None
        self.pool = CommitteePool(
            assignment.committees,
            self.rng,
            online_filter=self.network.online_members,
            round_hook=round_hook,
        )
        self._log(f"sortition: {max_committees} committees of {m} from {n} devices")

        secret_key = self._phase("keygen", self._phase_keygen)
        public_key = secret_key.public

        bins, sampling_plan = self._sampling_plan()
        self._packing = self._plan_packing(public_key, bins)
        aggregator, totals, audits_failed = self._phase(
            "input", lambda: self._phase_input(public_key, bins)
        )

        counts, dec_committee = self._phase(
            "decrypt", lambda: self._decrypt(totals, secret_key, sampling_plan)
        )
        self._log(f"decrypted aggregate of {len(counts)} categories")

        outputs = self._phase(
            "program", lambda: self._run_program(counts, dec_committee)
        )
        committees_used = len(self.pool.allocated)
        self._log(f"done: {committees_used} committees participated")
        fault_log = self.faults.finish() if self.faults is not None else None
        if self.journal is not None:
            self.journal.record_result(
                {
                    "outputs_repr": repr(outputs),
                    "outputs_digest": payload_digest(repr(outputs)),
                    "epsilon_charged": self.planning.certificate.epsilon,
                    "committees_used": committees_used,
                    "rejected_devices": list(aggregator.rejected),
                    "events": list(self.events),
                    "fault_log": fault_log.as_dict() if fault_log else None,
                }
            )
            self.statistics.journal_records = self.journal.record_count
        agg = aggregator.stats
        self.statistics.uploads_verified = agg.uploads_verified
        self.statistics.uploads_rejected = agg.uploads_rejected
        self.statistics.verify_seconds = agg.verify_seconds
        self.statistics.aggregate_seconds = agg.aggregate_seconds
        self.statistics.ciphertext_additions = agg.ciphertext_additions
        self.statistics.uploads_verified_per_second = agg.uploads_verified_per_second
        self.statistics.uploads_rejected_per_second = agg.uploads_rejected_per_second
        return QueryResult(
            outputs=outputs,
            rejected_devices=list(aggregator.rejected),
            audits_failed=audits_failed,
            committees_used=committees_used,
            epsilon_charged=self.planning.certificate.epsilon,
            events=list(self.events),
            authorization=self.certificate,
            fault_log=fault_log,
            statistics=self.statistics,
        )

    def _validate_privacy_certificate(self) -> None:
        """Re-analyze the plan and validate the attached privacy proof.

        The dataflow pass must come back clean (an un-noised release, an
        insufficient noise scale, or a budget mismatch refuses execution),
        and when the planner attached a serialized PrivacyCertificate its
        digest must match the fresh re-analysis — a certificate that no
        longer describes the plan it rides with fails closed.
        """
        from ..verify.dataflow import analyze_planning_result
        from ..verify.report import PlanVerificationError

        report, derived = analyze_planning_result(self.planning)
        report.raise_if_failed()
        attached = getattr(self.planning, "privacy_certificate", None)
        if attached is not None and derived is not None:
            if attached.digest() != derived.digest():
                report.add(
                    "df-certificate-stale",
                    "privacy certificate",
                    f"attached certificate digest {attached.digest()[:16]}... "
                    f"does not match a fresh re-analysis "
                    f"({derived.digest()[:16]}...); the plan or its "
                    "certificate was modified after planning",
                    node_path="planning.privacy_certificate",
                )
                raise PlanVerificationError(report)
        self.privacy_certificate = attached or derived

    def _restore_from_journal(self) -> None:
        """Adopt the durable ledger state of previous incarnations.

        Journaled charges are the source of truth for budget already
        spent: they are re-applied to the (fresh, in-memory) accountant
        exactly once per label, and remembered so the charge site skips
        them during replay. A journal that already holds a result refuses
        to run again — there is nothing left to resume.
        """
        from .journal import JournalError

        if self.journal.completed:
            raise JournalError(
                f"journal {self.journal.path!r} already records a completed "
                "run; refusing to re-execute (read the result instead)"
            )
        for label, (eps, delta) in self.journal.charges().items():
            self._restored_charges[label] = (eps, delta)
            if self.accountant is not None:
                self.accountant.charge_once(PrivacyCost(eps, delta), label)

    def _phase_keygen(self) -> paillier.PaillierPrivateKey:
        committee = self._allocate("keygen")
        # Budget check happens before any key material is produced (§5.2);
        # the charge is guarded so a keygen replay cannot double-bill, and
        # journaled (write-ahead, keyed by label) so a coordinator crash
        # between charging and finishing cannot double-bill either.
        if self.accountant is not None and not self._budget_charged:
            label = self.charge_label
            cost = PrivacyCost(
                self.planning.certificate.epsilon, self.planning.certificate.delta
            )
            if label in self._restored_charges:
                # A previous incarnation already paid for this query (the
                # accountant was restored from the journal ledger); adopt
                # the charge into the payload-visible map here — the same
                # execution point where the original incarnation charged —
                # so replayed checkpoint payloads stay identical.
                self._charges[label] = self._restored_charges[label]
                self._budget_charged = True
            else:
                if not self.accountant.can_afford(cost):
                    raise BudgetExhausted(
                        f"privacy budget exhausted for {label!r}"
                    )
                if self.journal is not None:
                    self.journal.charge(label, cost.epsilon, cost.delta)
                self.accountant.charge_once(cost, label)
                self._charges[label] = (cost.epsilon, cost.delta)
                self._budget_charged = True
        secret_key = paillier.keygen(self.key_prime_bits, self._fresh("keygen"))
        limb_count = math.ceil((2 * self.key_prime_bits + 8) / 96) + 1
        shares: Dict[str, List[SecretValue]] = {
            "lam": [
                committee.engine.input_value(limb)
                for limb in bigint_to_limbs(secret_key.lam, limb_count)
            ],
            "mu": [
                committee.engine.input_value(limb)
                for limb in bigint_to_limbs(secret_key.mu, limb_count)
            ],
        }
        # Jointly generate the next round's randomness (B_{i+1} = xor of
        # member inputs).
        block_rng = self._fresh("block")
        contributions = {
            member: block_rng.getrandbits(256).to_bytes(32, "big")
            for member in committee.members
        }
        next_block = jointly_generate_block(contributions)
        # Sign the query authorization certificate (§5.2): public key,
        # sequence number, plan digest, remaining budget, pinned registry,
        # and the next block.
        remaining_eps, remaining_delta = float("inf"), float("inf")
        if self.accountant is not None:
            remaining = self.accountant.remaining()
            remaining_eps, remaining_delta = remaining.epsilon, remaining.delta
        body = CertificateBody(
            query_sequence=self.network.sortition.round_number,
            public_key_digest=hashlib_sha256_int(secret_key.public.n),
            plan_digest=plan_digest(
                self.planning.plan.describe() if self.planning.plan else "plan"
            ),
            epsilon_remaining=min(remaining_eps, 1e18),
            delta_remaining=min(remaining_delta, 1e18),
            registry_root=self.network.sortition.registry.root,
            next_block=next_block,
            privacy_certificate_digest=(
                self.privacy_certificate.digest_bytes()
                if self.privacy_certificate is not None
                else b""
            ),
        )
        member_secrets = {
            member: self.network.device(member).secret
            for member in committee.members
        }
        self.certificate = issue_certificate(body, committee.members, member_secrets)
        verify_certificate(self.certificate, member_secrets)
        self.network.advance_round(next_block)
        self._log(f"keygen committee {committee.members} issued the certificate")
        self._keygen_committee = committee
        self._key_shares = shares
        # The keygen committee is now parked holding the only copies of
        # the key-limb shares — register it for churn recovery.
        self._held_secrets = [_HeldSecrets(committee, shares)]
        return secret_key

    def _sampling_plan(self) -> Tuple[int, Optional[BinSamplingPlan]]:
        if self.logical.sample_fraction >= 1.0:
            return 1, None
        bins = 4
        if self._input_choice is not None and self._input_choice.params:
            bins = max(2, min(8, self._input_choice.params[0]))
        plan = BinSamplingPlan.for_fraction(self.logical.sample_fraction, bins)
        return bins, plan

    # ---------------------------------------------------------------- input

    def _plan_packing(
        self, public_key: paillier.PaillierPublicKey, bins: int
    ) -> Optional[SlotPacking]:
        """Choose the Paillier slot packing for this query's uploads.

        The per-slot aggregate bound comes from the upload ZKPs: accepted
        one-hot vectors carry at most a 1 per slot, accepted range vectors
        at most ``hi`` (out-of-bound uploads are rejected before they can
        reach the aggregate, so they cannot overflow a lane). The bound is
        computed from the *total* registered population, which is stable
        across churn, so chaos and fault-free twins plan identical layouts.
        Signed ranges stay unpacked: a negative residue mod n would smear
        across every lane.
        """
        if self.data_plane == "legacy":
            return None
        categories = self.env.row_width
        one_hot = self.env.row_encoding == "one_hot"
        width = categories * bins if one_hot else categories
        if one_hot:
            per_device_max = 1
        else:
            lo = int(self.env.db_element.interval.lo)
            hi = int(self.env.db_element.interval.hi)
            if lo < 0 or hi < 0:
                return None
            per_device_max = hi
        max_slot_sum = len(self.network) * per_device_max
        return plan_packing(width, max_slot_sum, public_key.plaintext_modulus)

    def _input_statement(self, bins: int):
        """The upload well-formedness statement shared by every data plane."""
        categories = self.env.row_width
        one_hot = self.env.row_encoding == "one_hot"
        width = categories * bins if one_hot else categories
        if one_hot:
            statement = one_hot_statement(width)
        else:
            lo = int(self.env.db_element.interval.lo)
            hi = int(self.env.db_element.interval.hi)
            statement = range_statement(width, lo, hi)
        return categories, one_hot, width, statement

    def _phase_input_sharded(
        self, public_key: paillier.PaillierPublicKey, bins: int
    ):
        """The sharded, event-driven input phase (tentpole of the plane).

        The population is gathered once (struct-of-arrays), sliced into
        :class:`~repro.runtime.shard.DeviceShard` batches, and the intake
        runs as a ``churn -> upload -> verify -> aggregate -> fold`` event
        pipeline over an :class:`~repro.runtime.aggregator.AggregatorTree`:

        * ``churn`` (serial) re-syncs a shard's liveness/malice snapshot
          with the network and derives the shard's labelled RNG stream —
          all shared-state reads and stream derivations happen here, on
          the scheduler's serial path.
        * ``upload``/``verify`` (parallel-safe) are pure per-shard stages
          from :mod:`~repro.runtime.shard`.
        * ``aggregate`` (serial) ingests a verified batch into its tree
          leaf and journals the shard-scoped checkpoint
          (``input/shard{i}``) — so a coordinator crash resumes at shard
          granularity, not phase granularity.
        * ``fold`` (serial) combines an internal tree node the moment its
          last child lands.

        With ``shard_workers <= 1`` this is the serial oracle; any worker
        count produces byte-identical results (see scheduler contract).
        """
        from . import scheduler as event_scheduler
        from .aggregator import AggregatorTree
        from .shard import ObfuscatorPool, ShardContext, build_shards, upload_shard, verify_shard

        categories, one_hot, width, statement = self._input_statement(bins)
        round_number = self.network.sortition.round_number
        garbage = self._apply_garbage_faults()
        # One obfuscator pad pool per run: real obfuscators from a labelled
        # stream, shared read-only by every shard worker (see shard.py for
        # the subset-product construction and DESIGN.md for the trade).
        pool = ObfuscatorPool(public_key, self._shard_stream("sharded/pads"))
        ctx = ShardContext(
            public_key=public_key,
            statement=statement,
            categories=categories,
            bins=bins,
            one_hot=one_hot,
            width=width,
            round_number=round_number,
            packing=self._packing,
            pool=pool,
        )
        ids, values, online, malicious = self.network.soa_view()
        shards = build_shards(ids, values, online, malicious, self.shard_size)
        tree = AggregatorTree(
            public_key, num_leaves=len(shards), fanout=self.tree_fanout
        )
        scheduler = event_scheduler.EventScheduler(workers=self.shard_workers)
        devices = self.network.devices
        submit_seconds = 0.0

        def on_churn(event):
            shard = event.payload
            # Re-snapshot liveness/malice against the authoritative device
            # list (direct indexing per the contiguous-id invariant):
            # population faults applied at the phase boundary are visible
            # to the shard without any per-device lookup structure.
            for pos, device_id in enumerate(shard.device_ids):
                device = devices[int(device_id) - 1]
                shard.online[pos] = device.online
                shard.malicious[pos] = device.malicious
            stream = self._shard_stream(shard.stream_label)
            return None, [
                (event_scheduler.UPLOAD, shard.shard_id, (shard, stream))
            ]

        def on_upload(event):
            shard, stream = event.payload
            batch = upload_shard(shard, ctx, stream)
            return batch, [(event_scheduler.VERIFY, shard.shard_id, batch)]

        def on_verify(event):
            result = verify_shard(event.payload, ctx)
            return result, [
                (event_scheduler.AGGREGATE, result.shard_id, result)
            ]

        def on_aggregate(event):
            nonlocal submit_seconds
            result = event.payload
            ready = tree.ingest_leaf(result)
            submit_seconds += result.submit_seconds
            self.statistics.uploads_submitted += result.uploads_received
            self._checkpoint(f"input/shard{result.shard_id}")
            return None, (
                [(event_scheduler.FOLD, ready[1], ready)] if ready else []
            )

        def on_fold(event):
            level, index = event.payload
            ready = tree.fold_node(level, index)
            return None, (
                [(event_scheduler.FOLD, ready[1], ready)] if ready else []
            )

        scheduler.register(event_scheduler.CHURN, on_churn)
        scheduler.register(event_scheduler.UPLOAD, on_upload, parallel=True)
        scheduler.register(event_scheduler.VERIFY, on_verify, parallel=True)
        scheduler.register(event_scheduler.AGGREGATE, on_aggregate)
        scheduler.register(event_scheduler.FOLD, on_fold)
        for shard in shards:
            scheduler.post(event_scheduler.CHURN, shard.shard_id, shard)
        scheduler.drain()

        self._resolve_garbage_faults(garbage, tree)
        if not tree.root.accepted:
            raise ExecutionError("every upload was rejected")
        self._log(
            f"inputs: {tree.root.accepted} accepted, {len(tree.rejected)} "
            f"rejected across {len(shards)} shards "
            f"(tree depth {tree.depth}, fanout {self.tree_fanout})"
        )
        totals = tree.totals()
        audits_failed = tree.run_audits(
            self._shard_stream("sharded/audit"),
            auditors=min(len(self.network), 16),
        )
        if audits_failed:
            raise ExecutionError(f"{audits_failed} participant audits failed")
        self.statistics.submit_seconds += submit_seconds
        self.statistics.logical_width = width
        self.statistics.packed_width = (
            self._packing.packed_width if self._packing else width
        )
        self.statistics.packing_lanes = (
            self._packing.lanes if self._packing else 1
        )
        self.statistics.shards = len(shards)
        self.statistics.shard_size = self.shard_size
        self.statistics.tree_depth = tree.depth
        self.statistics.scheduler_workers = scheduler.stats.workers
        self.statistics.scheduler_events = sum(
            scheduler.stats.events_processed.values()
        )
        self.statistics.scheduler_batches = scheduler.stats.batches_dispatched
        self.statistics.scheduler_max_batch = scheduler.stats.max_batch
        self._checkpoint("input/aggregated")
        return tree, totals, audits_failed

    def _phase_input(
        self, public_key: paillier.PaillierPublicKey, bins: int
    ) -> Tuple[AggregatorNode, List[paillier.PaillierCiphertext], int]:
        if self.data_plane == "sharded":
            return self._phase_input_sharded(public_key, bins)
        aggregator = AggregatorNode(public_key)
        garbage = self._apply_garbage_faults()
        self._submit_inputs(aggregator, public_key, bins)
        accepted = aggregator.verify_uploads()
        self._resolve_garbage_faults(garbage, aggregator)
        if not accepted:
            raise ExecutionError("every upload was rejected")
        self._log(
            f"inputs: {len(accepted)} accepted, {len(aggregator.rejected)} rejected"
        )
        aggregator.commit_step("inputs", ciphertext_vector_digest(
            [u.ciphertexts[0] for u in accepted]
        ))

        totals = aggregator.aggregate(accepted)
        aggregator.commit_step("aggregate", ciphertext_vector_digest(totals))
        audits_failed = aggregator.run_audits(
            self._fresh("audit"), auditors=min(len(self.network), 16)
        )
        if audits_failed:
            raise ExecutionError(f"{audits_failed} participant audits failed")
        self._checkpoint("input/aggregated")
        return aggregator, totals, audits_failed

    def _apply_garbage_faults(self) -> List[Tuple[object, List[int]]]:
        """Flip scheduled devices to malicious so they upload garbage."""
        if self.faults is None:
            return []
        applied = []
        for event in self.faults.garbage_events("input"):
            devices = self.faults.resolve_devices(event)
            for device_id in devices:
                self.network.device(device_id).malicious = True
            applied.append((event, devices))
        return applied

    def _resolve_garbage_faults(
        self, applied: List[Tuple[object, List[int]]], aggregator: AggregatorNode
    ) -> None:
        for event, devices in applied:
            caught = set(devices) <= set(aggregator.rejected)
            self.faults.log.record(
                event,
                detection=f"well-formedness ZKP rejected upload(s) from "
                f"{[d for d in devices if d in aggregator.rejected]}",
                recovery="malformed ciphertext vectors dropped before "
                "aggregation; remaining uploads unaffected",
                outcome=RECOVERED if caught else UNDETECTED,
            )

    def _submit_inputs(
        self,
        aggregator: AggregatorNode,
        public_key: paillier.PaillierPublicKey,
        bins: int,
    ) -> None:
        categories, one_hot, width, statement = self._input_statement(bins)
        round_number = self.network.sortition.round_number
        packing = self._packing
        started = time.perf_counter()
        uploads: List[Upload] = []
        for device in self.network.devices:
            if not device.online:
                continue  # churned devices simply never upload
            # Per-device streams: one device dropping out must not shift
            # any other device's bin placement or encryption randomness.
            dev_rng = self._fresh(f"upload/{device.device_id}")
            vector = self._encode_row(device, categories, bins, one_hot, width, dev_rng)
            if packing is None:
                cts = [paillier.encrypt(public_key, v, dev_rng) for v in vector]
            else:
                # Packed plane: the device still draws one obfuscator per
                # *logical* slot — byte-identical RNG schedule to the
                # unpacked plane — but only spends an exponentiation per
                # packed ciphertext (the first lane's draw obfuscates it).
                obfuscators = [
                    paillier.draw_obfuscator(public_key, dev_rng) for _ in vector
                ]
                cts = [
                    paillier.encrypt_with_obfuscator(
                        public_key, value, obfuscators[j * packing.lanes]
                    )
                    for j, value in enumerate(packing.pack(vector))
                ]
            digest = ciphertext_vector_digest(cts)
            proof = prove(statement, vector, device.device_id, round_number, digest)
            uploads.append(Upload(device.device_id, cts, proof, vector))
        aggregator.receive_uploads(uploads)
        self.statistics.uploads_submitted += len(uploads)
        self.statistics.submit_seconds += time.perf_counter() - started
        self.statistics.logical_width = width
        self.statistics.packed_width = packing.packed_width if packing else width
        self.statistics.packing_lanes = packing.lanes if packing else 1

    def _encode_row(
        self,
        device,
        categories: int,
        bins: int,
        one_hot: bool,
        width: int,
        rng: random.Random,
    ) -> List[int]:
        if one_hot:
            vector = [0] * width
            category = int(device.value) % categories
            bin_index = rng.randrange(bins) if bins > 1 else 0
            vector[bin_index * categories + category] = 1
            if device.malicious:
                # Malformed upload: claim membership in several categories.
                vector = [0] * width
                for slot in range(min(3, width)):
                    vector[slot] = 1
            return vector
        value = device.value
        row = list(value) if isinstance(value, (list, tuple)) else [int(value)]
        if len(row) < width:
            row = row + [0] * (width - len(row))
        row = row[:width]
        if device.malicious:
            # Out-of-range value ("pretending the user is 1,000 years old").
            row[0] = 1000
        return [int(v) for v in row]

    # ---------------------------------------------------------- decryption

    def _decrypt(
        self,
        totals: List[paillier.PaillierCiphertext],
        secret_key: paillier.PaillierPrivateKey,
        sampling_plan: Optional[BinSamplingPlan],
    ) -> Tuple[List[int], Committee]:
        dec_committee = self._allocate("decryption")
        # The private key travels as secret shares via VSR (§5.2); the
        # decryption committee reconstructs it inside its honest-majority
        # quorum and jointly decrypts.
        keygen_committee = self._keygen_committee
        moved_lam = self._vsr_send(
            keygen_committee, self._key_shares["lam"], dec_committee
        )
        moved_mu = self._vsr_send(
            keygen_committee, self._key_shares["mu"], dec_committee
        )
        lam = limbs_to_bigint([dec_committee.engine.open(v) for v in moved_lam])
        mu = limbs_to_bigint([dec_committee.engine.open(v) for v in moved_mu])
        if lam != secret_key.lam or mu != secret_key.mu:
            raise ExecutionError("VSR key transfer corrupted the private key")
        reconstructed = paillier.PaillierPrivateKey(secret_key.public, lam, mu)
        started = time.perf_counter()
        counts = [paillier.decrypt(reconstructed, ct) for ct in totals]
        if self._packing is not None:
            counts = self._packing.unpack(counts)
        self.statistics.decrypt_seconds += time.perf_counter() - started
        if sampling_plan is not None:
            # Secrecy of the sample (§6): the committee privately picks the
            # window offset and only the binned window contributes.
            offset = sampling_plan.choose_committee_offset(self._fresh("sampling"))
            mask = sampling_plan.selection_mask(offset)
            categories = self.env.row_width
            binned = [
                counts[b * categories : (b + 1) * categories]
                for b in range(sampling_plan.num_bins)
            ]
            counts = [
                sum(binned[b][i] for b in range(sampling_plan.num_bins) if mask[b])
                for i in range(categories)
            ]
            self._log(
                f"sampled window of {sampling_plan.window}/{sampling_plan.num_bins} bins"
            )
        return counts, dec_committee

    # ------------------------------------------------------------- program

    def _run_program(self, counts: List[int], dec_committee: Committee) -> List[object]:
        # Reset the noise-stream counters so a phase replay re-derives the
        # identical labelled substreams (bit-identical recovery).
        self._noise_seq = 0
        self._laplace_seq = 0
        ops_committee = self._allocate("operations")
        shared_counts = dec_committee.share_values(counts)
        moved = self._vsr_send(dec_committee, shared_counts, ops_committee)
        aggregate = [Secret(v) for v in moved]

        hooks = MechanismHooks(
            em=lambda scores, k: self._run_em(ops_committee, scores, k),
            laplace=lambda value, scale: self._run_laplace(
                ops_committee, value, scale
            ),
        )
        bindings: Dict[str, object] = {
            self.logical.aggregate_var or "aggr": aggregate,
            "epsilon": self.env.epsilon,
            "sens": self.env.sensitivity,
            "N": len(self.network),
        }
        for name, value in self.env.constants.items():
            bindings[name] = value
        interp = SecureInterpreter(ops_committee.engine, hooks, bindings)
        outputs = interp.execute(self.logical.post_statements)
        return [self._publish(v, ops_committee) for v in outputs]

    def _publish(self, value: object, committee: Committee) -> object:
        if isinstance(value, Secret):
            # Outputs are mechanism results; opening them is the final
            # declassification step (§5.5).
            return committee.engine.open(value.value)
        if isinstance(value, list):
            return [self._publish(v, committee) for v in value]
        return value

    # ------------------------------------------------------------ mechanisms

    def _em_parameters(self) -> Tuple[int, int, int]:
        """(style, noise_batch, argmax_fanout) from the plan's choice."""
        style, noise_batch, fanout = 0, 8, 2
        choice = self._select_choice
        if choice is not None and choice.option == "gumbel_mpc":
            style, _dec, noise_batch, fanout = choice.params
        return style, max(1, noise_batch), max(2, fanout)

    def _run_em(
        self, ops_committee: Committee, scores: List[Secret], k: int
    ) -> Union[int, List[int]]:
        style, noise_batch, fanout = self._em_parameters()
        iterative = style == 1 and k > 1
        scale = 2.0 * self.env.sensitivity / self.env.epsilon
        winners: List[int] = []

        def noise_all() -> List[Tuple[int, Secret, Committee]]:
            seq = self._noise_seq
            self._noise_seq += 1
            noised: List[Tuple[int, Secret, Committee]] = []
            for start in range(0, len(scores), noise_batch):
                batch = scores[start : start + noise_batch]
                committee = self._allocate(f"noise[{start}]")
                noise_rng = self._fresh(f"noise/em{seq}/{start}")
                moved = self._vsr_send(
                    ops_committee, [s.value for s in batch], committee
                )
                for offset, value in enumerate(moved):
                    scaled = committee.engine.mul_public(value, FIXPOINT_SCALE)
                    noise = shared_gumbel_noise(committee.engine, scale, noise_rng)
                    noised.append(
                        (
                            start + offset,
                            Secret(committee.engine.add(scaled, noise)),
                            committee,
                        )
                    )
            return noised

        candidates = noise_all()
        for _round in range(k):
            live = [c for c in candidates if c[0] not in winners]
            winner = self._argmax_tree(live, fanout)
            winners.append(winner)
            self._log(f"em selected category {winner}")
            if iterative and _round + 1 < k:
                candidates = noise_all()
        return winners if k > 1 else winners[0]

    def _argmax_tree(
        self, candidates: List[Tuple[object, Secret, Committee]], fanout: int
    ) -> int:
        """Tournament of committees; each compares ``fanout`` candidates.

        A candidate is (index, noised score, home committee). At the leaves
        the index is a public category id; above the first level it is a
        Secret share, so the winner stays hidden until the root committee
        declassifies it (Fig 5). Values move between committees via VSR.
        """
        level = 0
        while len(candidates) > 1:
            next_level: List[Tuple[object, Secret, Committee]] = []
            for start in range(0, len(candidates), fanout):
                group = candidates[start : start + fanout]
                if len(group) == 1:
                    next_level.append(group[0])
                    continue
                committee = self._allocate(f"argmax[l{level}.{start}]")
                moved: List[Tuple[Secret, Secret]] = []
                for index, secret, home in group:
                    if isinstance(index, Secret):
                        idx_sv, val_sv = self._vsr_send(
                            home, [index.value, secret.value], committee
                        )
                        moved.append((Secret(idx_sv), Secret(val_sv)))
                    else:
                        val_sv = self._vsr_send(home, [secret.value], committee)[0]
                        moved.append(
                            (Secret(committee.engine.constant(index)), Secret(val_sv))
                        )
                best_index, best_value = moved[0]
                for index_s, value_s in moved[1:]:
                    greater = committee.engine.greater_than(
                        value_s.value, best_value.value
                    )
                    best_value = Secret(
                        committee.engine.select(greater, value_s.value, best_value.value)
                    )
                    best_index = Secret(
                        committee.engine.select(greater, index_s.value, best_index.value)
                    )
                next_level.append((best_index, best_value, committee))
            candidates = next_level
            level += 1
        index, _value, committee = candidates[0]
        if isinstance(index, Secret):
            return committee.engine.open(index.value)
        return index

    def _run_laplace(
        self, ops_committee: Committee, value: Secret, scale: float
    ) -> float:
        seq = self._laplace_seq
        self._laplace_seq += 1
        committee = self._allocate("laplace")
        moved = self._vsr_send(ops_committee, [value.value], committee)[0]
        scaled = committee.engine.mul_public(moved, FIXPOINT_SCALE)
        # In a chaos run the contribution count is pinned to the *planned*
        # committee size, so churn-trimmed committees draw identical noise.
        noise = shared_laplace_noise(
            committee.engine,
            scale,
            self._fresh(f"noise/laplace{seq}"),
            contributors=self.committee_size if self.faults is not None else None,
        )
        noised = committee.engine.add(scaled, noise)
        result = committee.engine.open(noised)
        self._log("laplace release")
        return result / FIXPOINT_SCALE
