"""Event-driven shard scheduler for the sharded execution data plane.

The flat data planes iterate every device once per protocol phase, which
is exactly what stops the simulated runtime well short of the paper's
10^9-device pitch: phase loops touch all N devices even when most of the
work is independent and batchable. The sharded plane instead models the
input pipeline as **events over device shards** — ``churn`` (sync a
shard's liveness with the population), ``upload`` (encode + encrypt +
prove a whole shard batch), ``verify`` (ZKP-check the batch at an
aggregation-tree leaf), ``aggregate`` (ingest the partial sums into the
tree), and ``fold`` (combine an internal tree node whose children are
all complete) — and this module drains whichever events are *ready*
instead of walking the population.

Determinism contract
--------------------

The scheduler must produce byte-identical results whether events are
drained one at a time (the **serial oracle**) or farmed out to a worker
pool. Three rules make that true:

* Events are totally ordered by their post sequence number; the heap
  drains them in that order, and a parallel batch's results are applied
  in that same order, so side effects commute with worker count.
* Handlers for parallel-safe kinds (``upload``, ``verify``) are pure
  per-shard functions: they read only their event payload and return
  ``(result, followups)``. All shared-state mutation lives in serial
  kinds (``aggregate``, ``fold``), which the scheduler never dispatches
  concurrently.
* Follow-up events returned by a handler are posted in handler-return
  order, after the whole batch is merged — never from inside a worker.

Workers are threads (the crypto is pure-Python big-int arithmetic, so a
process pool could be slotted behind the same merge contract on a
multi-core box; the byte-identical guarantee is what makes that swap
safe to do later).
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Event kinds of the sharded input pipeline, in pipeline order.
CHURN = "churn"
UPLOAD = "upload"
VERIFY = "verify"
AGGREGATE = "aggregate"
FOLD = "fold"

EVENT_KINDS = (CHURN, UPLOAD, VERIFY, AGGREGATE, FOLD)

#: A handler returns (result, followups); followups are (kind, shard_id,
#: payload) triples the scheduler posts after the event (batch) completes.
Followup = Tuple[str, int, object]


@dataclass(frozen=True)
class ShardEvent:
    """One unit of ready work against one shard (or tree node).

    ``seq`` is assigned by the scheduler at post time and totally orders
    the run; ``shard_id`` names the shard for the intake kinds and the
    tree-node ordinal for ``fold`` events.
    """

    seq: int
    kind: str
    shard_id: int
    payload: object = None

    def __lt__(self, other: "ShardEvent") -> bool:
        return self.seq < other.seq


@dataclass
class SchedulerStatistics:
    """Observability counters for one drained pipeline."""

    events_processed: Dict[str, int] = field(default_factory=dict)
    batches_dispatched: int = 0
    max_batch: int = 0
    workers: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "events_processed": dict(self.events_processed),
            "batches_dispatched": self.batches_dispatched,
            "max_batch": self.max_batch,
            "workers": self.workers,
        }


class EventScheduler:
    """Drains shard events in deterministic order, optionally in parallel.

    ``workers <= 1`` is the serial oracle: one event at a time, in seq
    order. ``workers > 1`` dispatches maximal runs of consecutive
    ready events of the same parallel-safe kind to a thread pool and
    merges their results back in seq order — byte-identical to the
    oracle by construction (see the module docstring's contract).
    """

    def __init__(self, workers: int = 0):
        self.workers = max(0, int(workers))
        self._heap: List[ShardEvent] = []
        self._handlers: Dict[str, Callable[[ShardEvent], Tuple[object, Sequence[Followup]]]] = {}
        self._parallel_kinds: set = set()
        self._seq = 0
        self.stats = SchedulerStatistics(workers=self.workers)

    def register(
        self,
        kind: str,
        handler: Callable[[ShardEvent], Tuple[object, Sequence[Followup]]],
        parallel: bool = False,
    ) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; kinds are {EVENT_KINDS}")
        self._handlers[kind] = handler
        if parallel:
            self._parallel_kinds.add(kind)

    def post(self, kind: str, shard_id: int, payload: object = None) -> ShardEvent:
        if kind not in self._handlers:
            raise ValueError(f"no handler registered for event kind {kind!r}")
        event = ShardEvent(self._seq, kind, shard_id, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ---------------------------------------------------------------- drain

    def _pop_batch(self) -> List[ShardEvent]:
        """The maximal run of ready same-kind parallel events, else one.

        Only consecutive (by seq) events of one parallel-safe kind batch
        together; each touches a distinct shard by construction of the
        pipeline (one event per shard per stage), so the batch has no
        intra-batch ordering constraints beyond the merge order.
        """
        first = heapq.heappop(self._heap)
        if self.workers <= 1 or first.kind not in self._parallel_kinds:
            return [first]
        batch = [first]
        while self._heap and self._heap[0].kind == first.kind:
            batch.append(heapq.heappop(self._heap))
        return batch

    def drain(self) -> int:
        """Process events until none remain; returns the count handled."""
        handled = 0
        pool: Optional[ThreadPoolExecutor] = None
        try:
            while self._heap:
                batch = self._pop_batch()
                handled += len(batch)
                kind = batch[0].kind
                self.stats.events_processed[kind] = (
                    self.stats.events_processed.get(kind, 0) + len(batch)
                )
                self.stats.batches_dispatched += 1
                self.stats.max_batch = max(self.stats.max_batch, len(batch))
                if len(batch) == 1:
                    outcomes = [self._handlers[kind](batch[0])]
                else:
                    if pool is None:
                        pool = ThreadPoolExecutor(max_workers=self.workers)
                    outcomes = list(pool.map(self._handlers[kind], batch))
                # Merge in seq order: followups post (and any serial side
                # effects already happened) exactly as the oracle would.
                for _result, followups in outcomes:
                    for follow_kind, shard_id, payload in followups or ():
                        self.post(follow_kind, shard_id, payload)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return handled

    @property
    def pending(self) -> int:
        return len(self._heap)
