"""Device shards: struct-of-arrays batches for the sharded data plane.

A :class:`DeviceShard` holds one contiguous slice of the population as
numpy arrays (ids, raw values, liveness, malice) plus the label of the
RNG substream every value-relevant draw for that shard comes from. The
shard is the unit of everything in the sharded runtime: the event
scheduler schedules per-shard work, journal checkpoints are per-shard,
fault-plan replay re-derives per-shard streams, and aggregation-tree
leaves ingest per-shard batches.

The heavy per-device costs of the flat planes and how the shard stages
remove them:

* **Encryption randomness.** Paillier encryption spends one ~2k-bit-op
  modular exponentiation per ciphertext drawing ``r^n mod n^2``. The
  sharded plane amortizes it with an :class:`ObfuscatorPool`: a small
  pool of precomputed pads ``h_i = r_i^n mod n^2`` (real obfuscators,
  drawn from a labelled stream) from which each device takes a random
  subset *product* — still a uniform-looking element of the subgroup of
  n-th residues, at the cost of a handful of modular multiplications
  instead of a full exponentiation. This is the classic precomputed-
  randomization trade (cf. batch-RSA / fast Schnorr preprocessing);
  DESIGN.md records it as a simulation-scale substitution alongside the
  HMAC sortition tags.
* **Draw scheduling.** Flat planes draw one obfuscator per *logical*
  slot to keep a global draw schedule; the sharded plane owns its
  per-shard streams outright, so it draws exactly one pad subset per
  *packed* ciphertext.
* **Encoding.** One-hot bin placement is drawn and encoded per shard
  with numpy, not per device in the interpreter loop.

Every stage function here is **pure per shard** — it reads its
arguments, draws only from the shard's own stream, and returns a value —
which is what lets the scheduler run shards on a worker pool and still
merge results byte-identically to the serial oracle.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..crypto import paillier
from ..crypto.zkp import Statement, prove, verify as zkp_verify
from .aggregator import Upload, ciphertext_vector_digest
from .packing import SlotPacking


@dataclass
class DeviceShard:
    """One contiguous slice of the population, struct-of-arrays.

    ``online``/``malicious`` are snapshots taken by the ``churn`` event
    immediately before the shard uploads, so population faults applied at
    phase boundaries are visible to the shard without per-device lookups.
    """

    shard_id: int
    device_ids: np.ndarray  # int64, shape (n,)
    values: np.ndarray  # int64, shape (n,) categorical or (n, width) numeric
    online: np.ndarray  # bool, shape (n,)
    malicious: np.ndarray  # bool, shape (n,)
    stream_label: str = ""

    def __len__(self) -> int:
        return len(self.device_ids)

    @property
    def online_count(self) -> int:
        return int(np.count_nonzero(self.online))


class ObfuscatorPool:
    """Precomputed Paillier encryption randomness, drawn by subset product.

    ``pool_size`` pads are real obfuscators ``r^n mod n^2`` with ``r``
    drawn from the given (labelled, seeded) stream. :meth:`draw` returns
    the product of ``subset_size`` pads sampled with replacement — a
    random n-th residue obtained with ``subset_size`` modular
    multiplications instead of one modular exponentiation. The pool is
    immutable after construction and safe to share across shard workers.
    """

    def __init__(
        self,
        public_key: paillier.PaillierPublicKey,
        rng: random.Random,
        pool_size: int = 64,
        subset_size: int = 8,
    ):
        if pool_size < 2 or subset_size < 1:
            raise ValueError("pool needs >= 2 pads and a positive subset size")
        self.public_key = public_key
        self.pool_size = pool_size
        self.subset_size = subset_size
        self._n2 = public_key.n_squared
        # One fixed-exponent modexp batch through the crypto backend: the
        # obfuscators are drawn first (preserving the stream's draw order)
        # and padded in bulk.
        obfuscators = [
            paillier.draw_obfuscator(public_key, rng) for _ in range(pool_size)
        ]
        self._pads: Tuple[int, ...] = tuple(
            paillier.precompute_pads(public_key, obfuscators)
        )

    def draw(self, rng: random.Random) -> int:
        """One fresh obfuscator: a random subset product of the pads."""
        n2 = self._n2
        pads = self._pads
        size = self.pool_size
        acc = pads[rng.randrange(size)]
        for _ in range(self.subset_size - 1):
            acc = acc * pads[rng.randrange(size)] % n2
        return acc


@dataclass(frozen=True)
class ShardContext:
    """Everything a shard stage needs beyond the shard itself.

    Immutable and shared (read-only) across all shard workers; the only
    mutable inputs to a stage are the shard and its own RNG stream.
    """

    public_key: paillier.PaillierPublicKey
    statement: Statement
    categories: int
    bins: int
    one_hot: bool
    width: int
    round_number: int
    packing: Optional[SlotPacking]
    pool: Optional[ObfuscatorPool]


@dataclass
class ShardUploadBatch:
    """The ``upload`` stage's output: one shard's uploads, pre-verification."""

    shard_id: int
    uploads: List[Upload]
    submit_seconds: float


@dataclass
class ShardIntakeResult:
    """The ``verify`` stage's output: one aggregation-tree leaf's intake.

    ``partials`` are the per-packed-slot homomorphic sums over the
    accepted uploads (``None`` when every upload was rejected);
    ``leaf_digest`` commits to the accepted uploads in order.
    """

    shard_id: int
    partials: Optional[List[paillier.PaillierCiphertext]]
    accepted: int
    rejected: List[int]
    upload_digests: List[bytes]
    leaf_digest: bytes
    submit_seconds: float = 0.0
    verify_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    ciphertext_additions: int = 0
    uploads_received: int = 0


# ------------------------------------------------------------------ stages


def _encode_shard_vectors(
    shard: DeviceShard, ctx: ShardContext, rng: random.Random
) -> Tuple[np.ndarray, List[List[int]]]:
    """Per-device witness vectors for the shard's online devices.

    Returns ``(online_ids, vectors)``. One-hot bin placement consumes one
    ``randrange`` per online device from the shard stream (stable order:
    ascending device id), matching the flat planes' per-device draw shape
    so malformed/honest mixes stay reproducible.
    """
    online_idx = np.flatnonzero(shard.online)
    online_ids = shard.device_ids[online_idx]
    vectors: List[List[int]] = []
    if ctx.one_hot:
        values = shard.values[online_idx]
        categories = ctx.categories
        cats = np.mod(values, categories).astype(np.int64)
        if ctx.bins > 1:
            bin_draws = [rng.randrange(ctx.bins) for _ in range(len(online_idx))]
        else:
            bin_draws = [0] * len(online_idx)
        slots = np.asarray(bin_draws, dtype=np.int64) * categories + cats
        malicious = shard.malicious[online_idx]
        for pos in range(len(online_idx)):
            vector = [0] * ctx.width
            if malicious[pos]:
                # Malformed upload: claim membership in several categories.
                for slot in range(min(3, ctx.width)):
                    vector[slot] = 1
            else:
                vector[int(slots[pos])] = 1
            vectors.append(vector)
        return online_ids, vectors
    rows = shard.values[online_idx]
    if rows.ndim == 1:
        rows = rows.reshape(-1, 1)
    malicious = shard.malicious[online_idx]
    for pos in range(len(online_idx)):
        row = [int(v) for v in rows[pos][: ctx.width]]
        if len(row) < ctx.width:
            row = row + [0] * (ctx.width - len(row))
        if malicious[pos]:
            # Out-of-range value ("pretending the user is 1,000 years old").
            row[0] = 1000
        vectors.append(row)
    return online_ids, vectors


def upload_shard(
    shard: DeviceShard, ctx: ShardContext, rng: random.Random
) -> ShardUploadBatch:
    """The ``upload`` stage: encode, encrypt, and prove a whole shard.

    Each online device produces one :class:`Upload` — packed ciphertexts
    obfuscated via the pad pool (one subset-product per packed
    ciphertext), digest, and well-formedness proof — exactly the wire
    objects the flat planes produce, just built batch-at-a-time.
    """
    started = time.perf_counter()
    pk = ctx.public_key
    packing = ctx.packing
    pool = ctx.pool
    online_ids, vectors = _encode_shard_vectors(shard, ctx, rng)
    uploads: List[Upload] = []
    for pos, device_id in enumerate(online_ids):
        vector = vectors[pos]
        plaintexts = packing.pack(vector) if packing is not None else vector
        cts = []
        for value in plaintexts:
            if pool is not None:
                cts.append(paillier.encrypt_with_pad(pk, value, pool.draw(rng)))
            else:
                cts.append(paillier.encrypt(pk, value, rng))
        digest = ciphertext_vector_digest(cts)
        proof = prove(ctx.statement, vector, int(device_id), ctx.round_number, digest)
        uploads.append(Upload(int(device_id), cts, proof, vector))
    return ShardUploadBatch(
        shard.shard_id, uploads, time.perf_counter() - started
    )


def verify_shard(batch: ShardUploadBatch, ctx: ShardContext) -> ShardIntakeResult:
    """The ``verify`` + leaf-``aggregate`` stage: one tree leaf's intake.

    ZKP-checks every upload (identical accept/reject semantics to
    :meth:`AggregatorNode.verify_uploads`), folds the accepted ciphertext
    vectors into per-slot partial sums, and commits the shard batch under
    a leaf digest over the accepted upload digests in order.
    """
    started = time.perf_counter()
    accepted: List[Upload] = []
    rejected: List[int] = []
    for upload in batch.uploads:
        if upload.proof.ciphertext_digest != ciphertext_vector_digest(
            upload.ciphertexts
        ):
            rejected.append(upload.device_id)
            continue
        if not zkp_verify(upload.proof, upload.witness):
            rejected.append(upload.device_id)
            continue
        accepted.append(upload)
    verify_seconds = time.perf_counter() - started

    started = time.perf_counter()
    partials: Optional[List[paillier.PaillierCiphertext]] = None
    additions = 0
    if accepted:
        width = len(accepted[0].ciphertexts)
        partials = [
            paillier.sum_ciphertexts([u.ciphertexts[j] for u in accepted])
            for j in range(width)
        ]
        additions = (len(accepted) - 1) * width
    aggregate_seconds = time.perf_counter() - started

    upload_digests = [u.digest() for u in accepted]
    hasher = hashlib.sha256(b"shard-leaf")
    hasher.update(batch.shard_id.to_bytes(8, "big"))
    for dig in upload_digests:
        hasher.update(dig)
    return ShardIntakeResult(
        shard_id=batch.shard_id,
        partials=partials,
        accepted=len(accepted),
        rejected=rejected,
        upload_digests=upload_digests,
        leaf_digest=hasher.digest(),
        submit_seconds=batch.submit_seconds,
        verify_seconds=verify_seconds,
        aggregate_seconds=aggregate_seconds,
        ciphertext_additions=additions,
        uploads_received=len(batch.uploads),
    )


def build_shards(
    device_ids: Sequence[int],
    values: np.ndarray,
    online: np.ndarray,
    malicious: np.ndarray,
    shard_size: int,
    label_template: str = "sharded/upload/{}",
) -> List[DeviceShard]:
    """Slice a population's struct-of-arrays view into contiguous shards."""
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    ids = np.asarray(device_ids, dtype=np.int64)
    shards: List[DeviceShard] = []
    for shard_id, start in enumerate(range(0, len(ids), shard_size)):
        stop = start + shard_size
        shards.append(
            DeviceShard(
                shard_id=shard_id,
                device_ids=ids[start:stop],
                values=values[start:stop],
                online=np.asarray(online[start:stop], dtype=bool).copy(),
                malicious=np.asarray(malicious[start:stop], dtype=bool).copy(),
                stream_label=label_template.format(shard_id),
            )
        )
    return shards
