"""Execution runtime (§5): simulated federated network, aggregator,
committees with VSR hand-offs, secure interpreter, the executor, and the
durable execution journal backing crash-recovery resume."""

from .aggregator import AggregatorNode, Upload
from .committee import Committee, CommitteePool
from .executor import ExecutionError, QueryExecutor, QueryRejected, QueryResult
from .interp import InterpreterError, MechanismHooks, Secret, SecureInterpreter
from .journal import (
    ExecutionJournal,
    JournalCorrupted,
    JournalDivergence,
    JournalError,
    JournalTruncated,
    run_to_completion,
)
from .network import Device, FederatedNetwork

__all__ = [
    "AggregatorNode",
    "Upload",
    "Committee",
    "CommitteePool",
    "QueryExecutor",
    "QueryResult",
    "QueryRejected",
    "ExecutionError",
    "ExecutionJournal",
    "JournalCorrupted",
    "JournalDivergence",
    "JournalError",
    "JournalTruncated",
    "run_to_completion",
    "SecureInterpreter",
    "MechanismHooks",
    "Secret",
    "InterpreterError",
    "Device",
    "FederatedNetwork",
]
