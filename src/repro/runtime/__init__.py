"""Execution runtime (§5): simulated federated network, aggregator,
committees with VSR hand-offs, secure interpreter, and the executor."""

from .aggregator import AggregatorNode, Upload
from .committee import Committee, CommitteePool
from .executor import ExecutionError, QueryExecutor, QueryRejected, QueryResult
from .interp import InterpreterError, MechanismHooks, Secret, SecureInterpreter
from .network import Device, FederatedNetwork

__all__ = [
    "AggregatorNode",
    "Upload",
    "Committee",
    "CommitteePool",
    "QueryExecutor",
    "QueryResult",
    "QueryRejected",
    "ExecutionError",
    "SecureInterpreter",
    "MechanismHooks",
    "Secret",
    "InterpreterError",
    "Device",
    "FederatedNetwork",
]
