"""Paillier slot packing for the upload data plane.

The dominant cost of the input phase is one modular exponentiation per
Paillier encryption, and the seed data plane encrypts one ciphertext per
logical slot. Because the paper's device rows are tiny values (one-hot
bits, small bounded integers) inside a huge plaintext space (a 2·k-bit
modulus), many logical slots can share one plaintext: slot i is placed at
bit offset ``(i mod lanes) * slot_bits`` of packed ciphertext
``i // lanes``. Homomorphic addition then sums every lane in parallel —
the classic BatchCrypt/ACORN-style quantized packing — cutting both the
device-side exponentiations and the aggregate/decrypt work by the lane
count.

Correctness requires that no lane ever carries into its neighbour:
``slot_bits`` must cover the *aggregated* per-slot sum (device count times
the per-device slot bound, which the upload ZKPs enforce for every
accepted upload), and ``lanes * slot_bits`` must fit the plaintext
modulus. :func:`plan_packing` computes the widest safe layout and returns
``None`` when packing cannot help (a single lane) or cannot be proven safe
(signed ranges).

Packing changes the ciphertext-level wire format only. Upload witnesses,
ZKP statements, rejected-device sets, decrypted logical counts, DP noise,
and every published output are unchanged — the runtime equivalence suite
(``tests/test_runtime_equivalence.py``) pins that down against the legacy
one-ciphertext-per-slot plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..crypto.backend import get_backend


@dataclass(frozen=True)
class SlotPacking:
    """Layout mapping ``width`` logical slots onto packed plaintexts."""

    width: int
    slot_bits: int
    lanes: int

    def __post_init__(self):
        if self.width < 1 or self.slot_bits < 1 or self.lanes < 1:
            raise ValueError("packing dimensions must be positive")

    @property
    def packed_width(self) -> int:
        return -(-self.width // self.lanes)

    def pack(self, vector: Sequence[int]) -> List[int]:
        """Pack a logical slot vector into ``packed_width`` plaintexts."""
        if len(vector) != self.width:
            raise ValueError(
                f"vector of {len(vector)} slots does not match width {self.width}"
            )
        backend = get_backend()
        return [
            backend.pack_lanes(vector[start : start + self.lanes], self.slot_bits)
            for start in range(0, self.width, self.lanes)
        ]

    def unpack(self, packed: Sequence[int], *, check: bool = True) -> List[int]:
        """Split packed (aggregated) plaintexts back into logical slots.

        With ``check`` (the default) a value that overflows its packed
        capacity raises instead of silently bleeding into a neighbouring
        lane — this can only happen if the planner's per-slot bound was
        violated, i.e. a protocol bug, never honest data.
        """
        if len(packed) != self.packed_width:
            raise ValueError(
                f"{len(packed)} packed values do not match packed width "
                f"{self.packed_width}"
            )
        backend = get_backend()
        slots: List[int] = []
        for start, value in zip(range(0, self.width, self.lanes), packed):
            lanes_here = min(self.lanes, self.width - start)
            if check and value >> (lanes_here * self.slot_bits):
                raise ValueError(
                    "packed aggregate overflowed its lane capacity; the "
                    "per-slot sum bound used to plan the packing was violated"
                )
            slots.extend(backend.unpack_lanes(value, self.slot_bits, lanes_here))
        return slots


def plan_packing(
    width: int,
    max_slot_sum: int,
    plaintext_modulus: int,
) -> Optional[SlotPacking]:
    """Choose the widest carry-free packing, or ``None`` if packing can't win.

    ``max_slot_sum`` bounds the aggregated per-slot total (device count ×
    per-device slot maximum, as enforced by the upload ZKPs); one guard bit
    is added on top. Returns ``None`` when fewer than two lanes fit —
    callers then keep the one-ciphertext-per-slot layout.
    """
    if width < 1:
        raise ValueError("width must be positive")
    if max_slot_sum < 0:
        raise ValueError("max_slot_sum must be non-negative")
    slot_bits = max(max_slot_sum.bit_length(), 1) + 1
    usable_bits = plaintext_modulus.bit_length() - 1
    lanes = min(width, usable_bits // slot_bits)
    if lanes < 2:
        return None
    return SlotPacking(width=width, slot_bits=slot_bits, lanes=lanes)
