"""The simulated federated deployment: devices and sortition state (§5.1).

The runtime executes chosen plans end-to-end at small scale with real
cryptography (Paillier AHE, Shamir MPC, VSR, ZKPs, Merkle audits), which is
how we validate plans *functionally*; deployment-scale numbers come from
the cost model, exactly as in the paper's methodology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.sortition import (
    CommitteeAssignment,
    SortitionState,
    compute_ticket,
    run_sortition,
)


@dataclass
class Device:
    """One participant device.

    ``value`` is the device's raw datum: a category index for one-hot
    queries, or a numeric vector for bounded queries. ``malicious`` devices
    submit malformed uploads (exercising the ZKP rejection path);
    ``online`` models churn — offline devices cannot serve on committees
    (§5.1 tolerates up to a fraction g of each committee going offline).
    """

    device_id: int
    secret: bytes
    value: object = None
    malicious: bool = False
    online: bool = True


class FederatedNetwork:
    """A population of devices plus the public sortition state."""

    def __init__(
        self,
        num_devices: int,
        rng: Optional[random.Random] = None,
        malicious_fraction: float = 0.0,
        seed: Optional[int] = None,
    ):
        if num_devices < 4:
            raise ValueError("a federated deployment needs at least 4 devices")
        if rng is None and seed is None:
            raise ValueError(
                "FederatedNetwork needs an explicit rng= or seed=; an "
                "unseeded deployment cannot be replayed, which breaks both "
                "reproducibility and fault-recovery equivalence checks"
            )
        self.rng = rng if rng is not None else random.Random(seed)
        self.devices: List[Device] = []
        for device_id in range(1, num_devices + 1):
            secret = self.rng.getrandbits(128).to_bytes(16, "big")
            malicious = self.rng.random() < malicious_fraction
            self.devices.append(Device(device_id, secret, malicious=malicious))
        sortition_seed = self.rng.getrandbits(256).to_bytes(32, "big")
        self.sortition = SortitionState.initial(
            [d.device_id for d in self.devices], sortition_seed
        )
        self._check_contiguous_ids()

    def _check_contiguous_ids(self) -> None:
        """Validate once that ``devices[i].device_id == i + 1``.

        ``device()`` and the struct-of-arrays gathers index the list
        directly on that invariant instead of scanning or keeping an
        id->index map, which is what keeps shard construction at 10^6
        devices linear. Checked once here (O(n)) so a future constructor
        change that breaks the layout fails loudly, not with silently
        wrong lookups.
        """
        for index, dev in enumerate(self.devices):
            if dev.device_id != index + 1:
                raise ValueError(
                    f"device list is not contiguously numbered: position "
                    f"{index} holds device_id {dev.device_id!r}"
                )

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def device_ids(self) -> List[int]:
        return [d.device_id for d in self.devices]

    def device(self, device_id: int) -> Device:
        if not 1 <= device_id <= len(self.devices):
            raise KeyError(
                f"unknown device id {device_id!r}; this deployment has "
                f"devices 1..{len(self.devices)}"
            )
        return self.devices[device_id - 1]

    def load_categorical_data(self, categories: int, distribution: Sequence[float] = None) -> None:
        """Assign each device a category, optionally with a skewed distribution."""
        if distribution is not None:
            if len(distribution) != categories:
                raise ValueError("distribution length must equal category count")
            population = list(range(categories))
            for d in self.devices:
                d.value = self.rng.choices(population, weights=distribution, k=1)[0]
        else:
            for d in self.devices:
                d.value = self.rng.randrange(categories)

    def load_numeric_data(self, low: int, high: int, width: int = 1) -> None:
        """Assign each device a bounded numeric vector."""
        for d in self.devices:
            row = [self.rng.randint(low, high) for _ in range(width)]
            d.value = row if width > 1 else row[0]

    def soa_view(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One linear gather of the population as struct-of-arrays.

        Returns ``(device_ids, values, online, malicious)`` numpy arrays
        in device-id order — the input the sharded data plane slices into
        :class:`~repro.runtime.shard.DeviceShard` batches. Relies on the
        contiguous-id invariant checked at construction, so the gather is
        O(n) with no per-device lookups. ``values`` is ``(n,)`` int64 for
        scalar data and ``(n, width)`` for numeric vectors; devices with
        no loaded datum contribute 0.
        """
        n = len(self.devices)
        ids = np.arange(1, n + 1, dtype=np.int64)
        online = np.fromiter(
            (d.online for d in self.devices), dtype=bool, count=n
        )
        malicious = np.fromiter(
            (d.malicious for d in self.devices), dtype=bool, count=n
        )
        first = self.devices[0].value
        if isinstance(first, (list, tuple)):
            values = np.asarray([d.value for d in self.devices], dtype=np.int64)
        else:
            values = np.fromiter(
                (d.value if d.value is not None else 0 for d in self.devices),
                dtype=np.int64,
                count=n,
            )
        return ids, values, online, malicious

    def take_offline(self, device_ids: Sequence[int]) -> None:
        """Churn hook: the listed devices stop responding."""
        for device_id in device_ids:
            self.device(device_id).online = False

    def restore(self, device_ids: Sequence[int]) -> None:
        """Churn hook: previously offline devices come back mid-execution."""
        for device_id in device_ids:
            self.device(device_id).online = True

    def online_members(self, members: Sequence[int]) -> List[int]:
        return [m for m in members if self.device(m).online]

    def select_committees(
        self, num_committees: int, committee_size: int
    ) -> CommitteeAssignment:
        """Run one sortition round over the current public block (§5.1)."""
        tickets = [
            compute_ticket(
                d.device_id, d.secret, self.sortition.block, self.sortition.round_number
            )
            for d in self.devices
        ]
        return run_sortition(tickets, num_committees, committee_size)

    def advance_round(self, new_block: bytes) -> None:
        """Move sortition state forward with the committee-generated block."""
        self.sortition = self.sortition.advance(new_block, self.device_ids)
