"""Durable write-ahead execution journal with crash-recovery resume.

The paper's queries run for hours across huge device populations, yet
until this module every byte of coordinator state lived in memory: PR 4's
retry/failover survives *committee* churn, but a coordinator crash
between phases lost the run, the committee allocations, and any budget
already charged. Google's production system ("Confidential Federated
Computations", PAPERS.md) leans on durable ledgers so long-running
confidential aggregations are resumable and budget is charged exactly
once; this module brings that property to the simulated runtime.

Design
------

The journal is an append-only file of canonical-JSON records, one per
line, each carrying a **chained SHA-256 digest**: ``digest_i =
sha256(digest_{i-1} || canonical(record_i))`` with a fixed genesis
string. Loading re-derives the chain, so a truncated or tampered file is
detected *on load* — a typed :class:`JournalTruncated` /
:class:`JournalCorrupted` — never silently replayed. Record kinds:

``open``
    The run manifest (query source, seeds, deployment shape, serialized
    fault plan). Everything a fresh process needs to rebuild the run.
``checkpoint``
    Written at every ``QueryExecutor._checkpoint()`` boundary: phase
    label, checkpoint label/ordinal, committee allocations so far, the
    labelled RNG streams drawn (``faults.fresh`` labels), sealed
    held-secret state (a digest of the parked committees' live share
    vectors — a commitment, never the shares themselves), the accountant
    charges so far, and the fault :class:`~repro.faults.EventLog`.
``charge``
    Written *before* the in-memory accountant is debited (write-ahead):
    the label and (ε, δ) of one budget charge. Keyed by label, these give
    charge-once semantics on replay — a resumed incarnation restores the
    ledger and skips labels already journaled.
``crash``
    Appended when an injected :data:`~repro.faults.COORDINATOR_CRASH`
    fires: the checkpoint where this incarnation died. On resume, one
    crash record suppresses one re-firing of the same event, so the next
    incarnation sails past the death point.
``result``
    The released outputs (plus digests) of a completed run. A journal
    ending in a result record has nothing to resume.

Resume is **deterministic re-execution, verified record-by-record**: the
runtime's whole fault methodology already keys every value-relevant draw
by a stable label rather than global stream position, so a new
incarnation rebuilt from the manifest replays the identical run. The
journal's role is to make that replay *safe*: each checkpoint the
resumed run reaches is compared against the journaled record (same
label, same canonical payload) and any mismatch raises a typed
:class:`JournalDivergence` instead of quietly releasing a different
answer. Once the replay cursor passes the last intact record the journal
switches back to appending, and the run continues as if the crash never
happened — the headline guarantee, enforced by ``tests/test_journal.py``
in the same byte-identical methodology as PRs 4–5.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, List, Optional, Tuple

#: Bumped when the record schema changes; part of the genesis digest, so
#: journals from an incompatible schema fail the chain check on load.
JOURNAL_VERSION = 1

_GENESIS = hashlib.sha256(
    f"arboretum-execution-journal/v{JOURNAL_VERSION}".encode("utf-8")
).hexdigest()


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, finite floats only."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def payload_digest(payload: object) -> str:
    """SHA-256 over the canonical form of one payload (chain-independent)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class JournalError(Exception):
    """Base class for execution-journal failures."""


class JournalCorrupted(JournalError):
    """A record fails the chained-digest check (tampering or bit rot)."""


class JournalTruncated(JournalCorrupted):
    """The file ends mid-record (torn write) or holds no records at all."""


class JournalDivergence(JournalError):
    """A resumed run produced state that contradicts the journaled run.

    Raised when a replayed checkpoint's payload does not match the record
    written by the previous incarnation — wrong seeds, a changed query,
    or non-deterministic state. Failing here is the safety property: a
    divergent resume must never release a value.
    """


class ExecutionJournal:
    """One run's durable ledger; see the module docstring for the format.

    Construct via :meth:`create` (fresh run) or :meth:`load` (resume).
    A loaded journal starts in *replay* mode: checkpoints are verified
    against the stored records until the cursor is exhausted, after which
    new records append — continuing the digest chain across incarnations.
    """

    def __init__(self, path: str):
        self.path = path
        self._records: List[dict] = []
        self._last_digest = _GENESIS
        #: Verified checkpoint records awaiting replay (resume mode).
        self._checkpoint_records: List[dict] = []
        self._replay_cursor = 0
        self._crash_records: List[dict] = []
        self._charges: Dict[str, Tuple[float, float]] = {}
        self._result: Optional[dict] = None

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, path: str, manifest: Optional[dict] = None) -> "ExecutionJournal":
        """Start a fresh journal at ``path`` (truncating any existing file).

        ``manifest`` is the run recipe a future ``repro resume`` needs to
        rebuild the deployment; it becomes the ``open`` record.
        """
        execution_journal = cls(path)
        with open(path, "w", encoding="utf-8"):
            pass  # truncate; the open record is appended through _append
        execution_journal._append("open", dict(manifest or {}))
        return execution_journal

    @classmethod
    def load(cls, path: str) -> "ExecutionJournal":
        """Read and verify a journal; raises typed errors, never guesses.

        Every record's chained digest is re-derived. A file that ends
        mid-record raises :class:`JournalTruncated`; a record whose chain
        digest does not match raises :class:`JournalCorrupted`. Only a
        fully intact journal is ever handed to a resuming executor.
        """
        execution_journal = cls(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise JournalError(f"cannot read journal {path!r}: {exc}") from exc
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        else:
            # The file does not end in a newline: the final append was torn.
            raise JournalTruncated(
                f"journal {path!r} ends mid-record (torn final write)"
            )
        if not lines:
            raise JournalTruncated(f"journal {path!r} holds no records")
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                kind = JournalTruncated if index == len(lines) - 1 else JournalCorrupted
                raise kind(
                    f"journal {path!r} record {index} is not valid JSON "
                    f"({exc.msg}); the file is "
                    + ("truncated" if kind is JournalTruncated else "corrupted")
                ) from exc
            expected = execution_journal._chain_digest(
                record.get("seq"), record.get("kind"), record.get("payload")
            )
            if record.get("digest") != expected:
                raise JournalCorrupted(
                    f"journal {path!r} record {index} fails the digest chain "
                    f"(stored {str(record.get('digest'))[:16]}…, derived "
                    f"{expected[:16]}…); the journal was tampered with or "
                    "reordered"
                )
            if record.get("seq") != index:
                raise JournalCorrupted(
                    f"journal {path!r} record {index} carries sequence "
                    f"number {record.get('seq')!r}; records were dropped or "
                    "reordered"
                )
            execution_journal._ingest(record)
        records = execution_journal._records
        if not records or records[0]["kind"] != "open":
            raise JournalCorrupted(
                f"journal {path!r} does not begin with an open record"
            )
        return execution_journal

    def _ingest(self, record: dict) -> None:
        """Accept one verified record into the in-memory view."""
        self._records.append(record)
        self._last_digest = record["digest"]
        kind, payload = record["kind"], record["payload"]
        if kind == "checkpoint":
            self._checkpoint_records.append(record)
        elif kind == "charge":
            self._charges[payload["label"]] = (
                payload["epsilon"],
                payload["delta"],
            )
        elif kind == "crash":
            self._crash_records.append(record)
        elif kind == "result":
            self._result = payload

    # ------------------------------------------------------------- appends

    def _chain_digest(self, seq: object, kind: object, payload: object) -> str:
        body = canonical_json({"seq": seq, "kind": kind, "payload": payload})
        return hashlib.sha256(
            (self._last_digest + body).encode("utf-8")
        ).hexdigest()

    def _append(self, kind: str, payload: dict) -> dict:
        seq = len(self._records)
        record = {
            "seq": seq,
            "kind": kind,
            "payload": payload,
            "digest": self._chain_digest(seq, kind, payload),
        }
        # Write-ahead: the record is durable (flushed and fsynced) before
        # the caller acts on it, so a crash immediately after never leaves
        # the ledger behind the in-memory state.
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(canonical_json(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._ingest(record)
        return record

    # ------------------------------------------------------------ protocol

    def checkpoint(self, payload: dict) -> bool:
        """Record (or replay-verify) one executor checkpoint.

        Returns True when the checkpoint was verified against a record
        from a previous incarnation, False when it was appended live.
        """
        if self._replay_cursor < len(self._checkpoint_records):
            record = self._checkpoint_records[self._replay_cursor]
            self._replay_cursor += 1
            expected, got = record["payload"], payload
            if canonical_json(expected) != canonical_json(got):
                raise JournalDivergence(
                    f"resumed run diverged at checkpoint "
                    f"{got.get('seq')}/{got.get('label')!r}: journaled "
                    f"{expected.get('label')!r} with payload digest "
                    f"{payload_digest(expected)[:16]}…, replay derived "
                    f"{payload_digest(got)[:16]}…; refusing to release a "
                    "value from a divergent replay"
                )
            return True
        self._append("checkpoint", payload)
        # Live appends land in _checkpoint_records too; keep the cursor
        # past them so they are never mistaken for replayable history.
        self._replay_cursor = len(self._checkpoint_records)
        return False

    def charge(self, label: str, epsilon: float, delta: float) -> None:
        """Write-ahead record of one budget charge (call before debiting)."""
        self._append("charge", {"label": label, "epsilon": epsilon, "delta": delta})

    def charges(self) -> Dict[str, Tuple[float, float]]:
        """Label → (ε, δ) for every journaled charge (the durable ledger)."""
        return dict(self._charges)

    def consume_crash(self, checkpoint_seq: int, checkpoint_label: str) -> bool:
        """Suppress one journaled process death at this checkpoint.

        Each crash record absorbs exactly one re-firing of the same
        scheduled event, so an N-crash schedule completes after N resumes.
        """
        for record in self._crash_records:
            payload = record["payload"]
            if record.get("consumed"):
                continue
            if (
                payload["checkpoint_seq"] == checkpoint_seq
                and payload["checkpoint_label"] == checkpoint_label
            ):
                record["consumed"] = True
                return True
        return False

    def record_crash(
        self, checkpoint_seq: int, checkpoint_label: str, event_dict: dict
    ) -> None:
        """This incarnation is about to die at ``checkpoint_label``."""
        self._append(
            "crash",
            {
                "checkpoint_seq": checkpoint_seq,
                "checkpoint_label": checkpoint_label,
                "event": event_dict,
            },
        )

    def record_result(self, payload: dict) -> None:
        self._append("result", payload)

    # ------------------------------------------------------------- queries

    @property
    def manifest(self) -> dict:
        return dict(self._records[0]["payload"]) if self._records else {}

    @property
    def result(self) -> Optional[dict]:
        """The journaled outcome, or None while the run is unfinished."""
        return self._result

    @property
    def completed(self) -> bool:
        return self._result is not None

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def crash_count(self) -> int:
        return len(self._crash_records)

    @property
    def replaying(self) -> bool:
        return self._replay_cursor < len(self._checkpoint_records)

    def checkpoint_payloads(self) -> List[dict]:
        return [r["payload"] for r in self._checkpoint_records]

    def checkpoint_digests(self) -> List[str]:
        """Chain-independent digests of every checkpoint payload.

        Two runs of the same query took the same execution path iff these
        sequences are equal — the comparison ``repro chaos --crash-sweep``
        makes between every crash→resume journal and the uninterrupted
        baseline (crash/charge records make the *chain* digests differ by
        construction, so the per-payload digests are the right invariant).
        """
        return [payload_digest(p) for p in self.checkpoint_payloads()]

    def tail_digest(self) -> str:
        return self._last_digest


def run_to_completion(
    make_executor: Callable[[ExecutionJournal], object],
    path: str,
    manifest: Optional[dict] = None,
    max_incarnations: int = 8,
):
    """Drive a journaled run through crash→resume until it completes.

    ``make_executor`` must build a *fresh* deployment (network, planner,
    executor, accountant) around the journal it is given — exactly what a
    new coordinator process would do. The first incarnation records into
    a fresh journal at ``path``; each :class:`CoordinatorCrash` reloads
    the journal (re-verifying the digest chain) and starts the next
    incarnation, which replays to the death point and continues.

    Returns ``(QueryResult, resume_count)``.
    """
    from ..faults import CoordinatorCrash

    journal = ExecutionJournal.create(path, manifest)
    resumes = 0
    while True:
        executor = make_executor(journal)
        try:
            return executor.run(), resumes
        except CoordinatorCrash:
            resumes += 1
            if resumes >= max_incarnations:
                raise
            journal = ExecutionJournal.load(path)
