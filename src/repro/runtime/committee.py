"""Committees: MPC engines with VSR hand-offs between them (§5.2, §5.4).

Each committee wraps an honest-majority MPC engine over its members. When
intermediate state must move from one committee to the next (key shares
from the key-generation committee to decryption committees, decrypted
aggregates to noising committees, partial argmax results up the tree), the
sending committee verifiably re-shares it with VSR; as long as both
committees have honest majorities the receiving committee reconstructs a
fresh sharing of the same secrets, and tampered sub-shares are detected.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..crypto.field import DEFAULT_FIELD, PrimeField
from ..crypto.shamir import Share
from ..crypto.vsr import redistribute_vector
from ..mpc.engine import MPCEngine, SecretValue

#: Big integers (Paillier key material) are carried as base-2^LIMB_BITS
#: limbs so they fit the MPC field.
LIMB_BITS = 96


def bigint_to_limbs(value: int, count: int) -> List[int]:
    """Split a non-negative integer into ``count`` fixed-width limbs."""
    if value < 0:
        raise ValueError("only non-negative integers can be limb-encoded")
    mask = (1 << LIMB_BITS) - 1
    limbs = [(value >> (LIMB_BITS * i)) & mask for i in range(count)]
    if value >> (LIMB_BITS * count):
        raise OverflowError(f"{count} limbs cannot hold a {value.bit_length()}-bit value")
    return limbs


def limbs_to_bigint(limbs: Sequence[int]) -> int:
    value = 0
    for i, limb in enumerate(limbs):
        value |= limb << (LIMB_BITS * i)
    return value


class Committee:
    """One sortition-selected committee and its MPC engine."""

    def __init__(
        self,
        name: str,
        members: Sequence[int],
        rng: random.Random,
        field: PrimeField = DEFAULT_FIELD,
        bit_width: int = 40,
    ):
        if len(members) < 3:
            raise ValueError("a committee needs at least 3 members")
        self.name = name
        self.members = list(members)
        self.field = field
        self.rng = rng
        self.engine = MPCEngine(
            len(members), field=field, rng=rng, bit_width=bit_width
        )

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def threshold(self) -> int:
        return self.engine.threshold

    # --------------------------------------------------------------- sharing

    def share_values(self, values: Sequence[int]) -> List[SecretValue]:
        """Secret-share cleartext values held inside this committee's MPC."""
        return [self.engine.input_value(v) for v in values]

    def export_vector(self, values: Sequence[SecretValue]) -> Dict[int, List[Share]]:
        """Collect per-party share vectors, ready for VSR."""
        out: Dict[int, List[Share]] = {pid: [] for pid in self.engine.party_ids}
        for value in values:
            for pid, share in self.engine.export_shares(value).items():
                out[pid].append(share)
        return out

    # ------------------------------------------------------------------ VSR

    def send_via_vsr(
        self, values: Sequence[SecretValue], recipient: "Committee"
    ) -> List[SecretValue]:
        """Verifiably re-share ``values`` into the recipient's engine.

        In deployment the redistribution messages travel through the
        aggregator's mailbox, signed and encrypted; here the exchange is
        in-process but runs the full VSR protocol (Feldman-committed
        sub-shares, per-recipient verification).
        """
        if recipient.field.modulus != self.field.modulus:
            raise ValueError("committees must share a field for VSR")
        old_vectors = self.export_vector(values)
        new_shares = redistribute_vector(
            old_vectors,
            self.threshold,
            recipient.threshold,
            recipient.engine.party_ids,
            self.field,
            self.rng,
        )
        out: List[SecretValue] = []
        for i in range(len(values)):
            per_value = {pid: new_shares[pid][i] for pid in recipient.engine.party_ids}
            out.append(recipient.engine.input_shares(per_value))
        return out


class CommitteeError(Exception):
    """Raised when no usable committee can be assembled."""


class CommitteePool:
    """Allocates committees from a sortition assignment, in order.

    The executor asks for committees one at a time; each request consumes
    the next block of selected devices. If the sortition round selected
    fewer committees than a small-scale plan needs, selection wraps around
    (the §5.1 fallback of reassigning tasks to committee i+1 mod c). The
    same fallback handles churn: a committee that lost more than the
    tolerated fraction of members to churn is skipped and its task moves
    to the next committee.
    """

    def __init__(
        self,
        committees: List[List[int]],
        rng: random.Random,
        field: PrimeField = DEFAULT_FIELD,
        bit_width: int = 40,
        online_filter: Optional[callable] = None,
        churn_tolerance: float = 0.25,
    ):
        if not committees:
            raise ValueError("sortition produced no committees")
        self._memberships = committees
        self._next = 0
        self._rng = rng
        self._field = field
        self._bit_width = bit_width
        self._online_filter = online_filter
        self._churn_tolerance = churn_tolerance
        self.allocated: List[Committee] = []
        self.skipped: List[List[int]] = []

    def _usable_members(self, members: List[int]) -> Optional[List[int]]:
        """Online members, or None if the committee lost too many (§5.1)."""
        if self._online_filter is None:
            return list(members)
        online = self._online_filter(members)
        minimum = max(3, int((1.0 - self._churn_tolerance) * len(members)))
        if len(online) < minimum:
            return None
        return online

    def allocate(self, name: str) -> Committee:
        attempts = 0
        while attempts < 2 * len(self._memberships):
            members = self._memberships[self._next % len(self._memberships)]
            self._next += 1
            attempts += 1
            usable = self._usable_members(members)
            if usable is None:
                if members not in self.skipped:
                    self.skipped.append(members)
                continue
            committee = Committee(
                name, usable, self._rng, field=self._field, bit_width=self._bit_width
            )
            self.allocated.append(committee)
            return committee
        raise CommitteeError(
            f"no committee with enough online members for task {name!r}"
        )
