"""Committees: MPC engines with VSR hand-offs between them (§5.2, §5.4).

Each committee wraps an honest-majority MPC engine over its members. When
intermediate state must move from one committee to the next (key shares
from the key-generation committee to decryption committees, decrypted
aggregates to noising committees, partial argmax results up the tree), the
sending committee verifiably re-shares it with VSR; as long as both
committees have honest majorities the receiving committee reconstructs a
fresh sharing of the same secrets, and tampered sub-shares are detected.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..crypto.field import DEFAULT_FIELD, PrimeField
from ..crypto.shamir import Share
from ..crypto.vsr import VSRError, redistribute_vector
from ..mpc.engine import MPCEngine, SecretValue

#: Big integers (Paillier key material) are carried as base-2^LIMB_BITS
#: limbs so they fit the MPC field.
LIMB_BITS = 96


def bigint_to_limbs(value: int, count: int) -> List[int]:
    """Split a non-negative integer into ``count`` fixed-width limbs."""
    if value < 0:
        raise ValueError("only non-negative integers can be limb-encoded")
    mask = (1 << LIMB_BITS) - 1
    limbs = [(value >> (LIMB_BITS * i)) & mask for i in range(count)]
    if value >> (LIMB_BITS * count):
        raise OverflowError(f"{count} limbs cannot hold a {value.bit_length()}-bit value")
    return limbs


def limbs_to_bigint(limbs: Sequence[int]) -> int:
    value = 0
    for i, limb in enumerate(limbs):
        value |= limb << (LIMB_BITS * i)
    return value


class Committee:
    """One sortition-selected committee and its MPC engine."""

    def __init__(
        self,
        name: str,
        members: Sequence[int],
        rng: random.Random,
        field: PrimeField = DEFAULT_FIELD,
        bit_width: int = 40,
        round_hook: Optional[Callable[[], None]] = None,
    ):
        if len(members) < 3:
            raise ValueError("a committee needs at least 3 members")
        self.name = name
        self.members = list(members)
        self.field = field
        self.rng = rng
        self.bit_width = bit_width
        self.round_hook = round_hook
        self.engine = MPCEngine(
            len(members), field=field, rng=rng, bit_width=bit_width
        )
        self.engine.round_hook = round_hook

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def threshold(self) -> int:
        return self.engine.threshold

    # --------------------------------------------------------------- sharing

    def share_values(self, values: Sequence[int]) -> List[SecretValue]:
        """Secret-share cleartext values held inside this committee's MPC.

        Uses the engine's batched Vandermonde sharing; draws, shares, and
        counters match the historical per-value ``input_value`` loop.
        """
        return self.engine.input_values(values)

    def export_vector(self, values: Sequence[SecretValue]) -> Dict[int, List[Share]]:
        """Collect per-party share vectors, ready for VSR."""
        out: Dict[int, List[Share]] = {pid: [] for pid in self.engine.party_ids}
        for value in values:
            for pid, share in self.engine.export_shares(value).items():
                out[pid].append(share)
        return out

    # ------------------------------------------------------------------ VSR

    def send_via_vsr(
        self,
        values: Sequence[SecretValue],
        recipient: "Committee",
        exclude_members: Sequence[int] = (),
    ) -> List[SecretValue]:
        """Verifiably re-share ``values`` into the recipient's engine.

        In deployment the redistribution messages travel through the
        aggregator's mailbox, signed and encrypted; here the exchange is
        in-process but runs the full VSR protocol (Feldman-committed
        sub-shares, per-recipient verification). ``exclude_members`` drops
        those dealers' redistribution messages — the recovery path when a
        dealer's message is lost in transit: any surviving quorum of at
        least threshold+1 dealers reconstructs the identical secrets.
        """
        if recipient.field.modulus != self.field.modulus:
            raise ValueError("committees must share a field for VSR")
        old_vectors = self.export_vector(values)
        if exclude_members:
            excluded_pids = {
                self.members.index(m) + 1
                for m in exclude_members
                if m in self.members
            }
            old_vectors = {
                pid: shares
                for pid, shares in old_vectors.items()
                if pid not in excluded_pids
            }
            if len(old_vectors) < self.threshold + 1:
                raise VSRError(
                    f"only {len(old_vectors)} dealers reachable; need a "
                    f"quorum of {self.threshold + 1} to redistribute"
                )
        new_shares = redistribute_vector(
            old_vectors,
            self.threshold,
            recipient.threshold,
            recipient.engine.party_ids,
            self.field,
            self.rng,
        )
        out: List[SecretValue] = []
        for i in range(len(values)):
            per_value = {pid: new_shares[pid][i] for pid in recipient.engine.party_ids}
            out.append(recipient.engine.input_shares(per_value))
        return out

    # ------------------------------------------------------- share recovery

    def recover_shares(
        self,
        vectors: Dict[str, List[SecretValue]],
        lost_members: Sequence[int],
        rng: random.Random,
    ) -> Dict[str, List[SecretValue]]:
        """Survive member loss *after* shares were dealt (§5.1 churn).

        The surviving members form a reconstruction quorum as long as at
        least ``threshold + 1`` of them remain (and at least 3, the
        honest-majority floor): they verifiably re-share every outstanding
        secret among themselves via VSR, the committee shrinks to the
        survivors, and a fresh engine (with the survivors' own threshold)
        adopts the re-shared values. The secrets are bit-identical — only
        the sharing polynomials change — so recovered executions produce
        exactly the fault-free answer.

        Raises :class:`CommitteeError` when the loss exceeds what Shamir
        reconstruction tolerates; the caller must then fail over or abort.
        """
        lost = set(lost_members)
        departed = [m for m in self.members if m in lost]
        if not departed:
            return vectors
        survivors = [m for m in self.members if m not in lost]
        quorum = self.threshold + 1
        if len(survivors) < max(3, quorum):
            raise CommitteeError(
                f"committee {self.name!r} lost {len(departed)} member(s); "
                f"{len(survivors)} survivor(s) cannot meet the "
                f"reconstruction quorum of {max(3, quorum)}"
            )
        surviving_pids = [self.members.index(m) + 1 for m in survivors]
        old_threshold = self.threshold
        new_engine = MPCEngine(
            len(survivors), field=self.field, rng=rng, bit_width=self.bit_width
        )
        new_engine.round_hook = self.round_hook
        recovered: Dict[str, List[SecretValue]] = {}
        for label, values in vectors.items():
            old_vectors: Dict[int, List[Share]] = {pid: [] for pid in surviving_pids}
            for value in values:
                shares = self.engine.export_shares(value)
                for pid in surviving_pids:
                    old_vectors[pid].append(shares[pid])
            if not values:
                recovered[label] = []
                continue
            new_shares = redistribute_vector(
                old_vectors,
                old_threshold,
                new_engine.threshold,
                new_engine.party_ids,
                self.field,
                rng,
            )
            recovered[label] = [
                new_engine.input_shares(
                    {pid: new_shares[pid][i] for pid in new_engine.party_ids}
                )
                for i in range(len(values))
            ]
        self.members = survivors
        self.engine = new_engine
        return recovered


class CommitteeError(Exception):
    """Raised when no usable committee can be assembled."""


class CommitteePool:
    """Allocates committees from a sortition assignment, in order.

    The executor asks for committees one at a time; each request consumes
    the next block of selected devices. If the sortition round selected
    fewer committees than a small-scale plan needs, selection wraps around
    (the §5.1 fallback of reassigning tasks to committee i+1 mod c). The
    same fallback handles churn: a committee that lost more than the
    tolerated fraction of members to churn is skipped and its task moves
    to the next committee.
    """

    def __init__(
        self,
        committees: List[List[int]],
        rng: random.Random,
        field: PrimeField = DEFAULT_FIELD,
        bit_width: int = 40,
        online_filter: Optional[Callable[[List[int]], List[int]]] = None,
        churn_tolerance: float = 0.25,
        round_hook: Optional[Callable[[], None]] = None,
    ):
        if not committees:
            raise ValueError("sortition produced no committees")
        self._memberships = committees
        self._next = 0
        self._rng = rng
        self._field = field
        self._bit_width = bit_width
        self._online_filter = online_filter
        self._churn_tolerance = churn_tolerance
        self._round_hook = round_hook
        self.allocated: List[Committee] = []
        self.skipped: List[List[int]] = []
        #: Indices into the sortition assignment already recorded as skipped;
        #: membership lists are not hashable and may repeat under wrap-around,
        #: so dedup happens on the index, not the list.
        self._skipped_indices: Set[int] = set()

    def _usable_members(self, members: List[int]) -> Optional[List[int]]:
        """Online members, or None if the committee lost too many (§5.1)."""
        if self._online_filter is None:
            return list(members)
        online = self._online_filter(members)
        minimum = max(3, int((1.0 - self._churn_tolerance) * len(members)))
        if len(online) < minimum:
            return None
        return online

    def allocate(self, name: str) -> Committee:
        attempts = 0
        while attempts < 2 * len(self._memberships):
            index = self._next % len(self._memberships)
            members = self._memberships[index]
            self._next += 1
            attempts += 1
            usable = self._usable_members(members)
            if usable is None:
                if index not in self._skipped_indices:
                    self._skipped_indices.add(index)
                    self.skipped.append(members)
                continue
            committee = Committee(
                name,
                usable,
                self._rng,
                field=self._field,
                bit_width=self._bit_width,
                round_hook=self._round_hook,
            )
            self.allocated.append(committee)
            return committee
        raise CommitteeError(
            f"no committee with enough online members for task {name!r}"
        )
