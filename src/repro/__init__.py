"""Arboretum reproduction: a planner for large-scale federated analytics
with differential privacy (Margolin et al., SOSP 2023).

Public API tour
---------------

Planning (the paper's core contribution, §4)::

    from repro import QueryEnvironment, Planner, Constraints, Goal

    env = QueryEnvironment(num_participants=10**9, row_width=2**15)
    planner = Planner(env, constraints=Constraints(participant_max_bytes=4e9))
    result = planner.plan_source("aggr = sum(db); output(em(aggr));")
    print(result.plan.describe())

Execution (§5) on a simulated deployment::

    from repro import FederatedNetwork, QueryExecutor

    network = FederatedNetwork(64, seed=0)
    network.load_categorical_data(8)
    outcome = QueryExecutor(network, result).run()

Evaluation — every table and figure of §7 — lives in ``repro.eval``.
"""

from .analysis.types import QueryEnvironment
from .planner.costmodel import Constraints, CostModel, CostVector, Goal
from .planner.search import (
    Planner,
    PlannerOutOfMemory,
    PlanningFailed,
    PlanningResult,
    plan_query,
)
from .privacy.accountant import BudgetExceeded, PrivacyAccountant, PrivacyCost
from .privacy.certify import Certificate, CertificationError, certify
from .queries.catalog import ALL_QUERIES, QuerySpec
from .runtime.executor import QueryExecutor, QueryRejected, QueryResult
from .runtime.network import FederatedNetwork
from .verify import (
    PlanVerificationError,
    VerificationReport,
    Violation,
    lint_paths,
    verify_plan,
    verify_planning_result,
)

__version__ = "1.0.0"

__all__ = [
    "QueryEnvironment",
    "Planner",
    "PlanningResult",
    "PlanningFailed",
    "PlannerOutOfMemory",
    "plan_query",
    "Constraints",
    "Goal",
    "CostModel",
    "CostVector",
    "Certificate",
    "CertificationError",
    "certify",
    "PrivacyAccountant",
    "PrivacyCost",
    "BudgetExceeded",
    "FederatedNetwork",
    "QueryExecutor",
    "QueryResult",
    "QueryRejected",
    "ALL_QUERIES",
    "QuerySpec",
    "PlanVerificationError",
    "VerificationReport",
    "Violation",
    "verify_plan",
    "verify_planning_result",
    "lint_paths",
    "__version__",
]
