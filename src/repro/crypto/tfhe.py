"""A functional model of TFHE-style boolean FHE.

§2.2: "schemes like TFHE are often used to compute Boolean circuits over
encrypted bits, whereas others, such as BGV, are more commonly used for
numeric operations. The former is more efficient for logical operations
and comparisons, while the latter is more efficient for additions and
multiplications." This module provides the boolean side of that design
dimension so the planner can trade the two off (§3.3: "using a particular
cryptographic primitive might speed up additions but slow down
comparisons").

Like the BGV model, this is behavioural (see DESIGN.md): ciphertexts carry
their bit internally and are only readable via ``decrypt`` with the right
key; every gate goes through a bootstrapping step, so unlike the leveled
BGV model there is no depth limit — the cost is per-gate instead, which the
cost model charges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

#: Serialized TFHE ciphertext: one LWE sample at n=630, 32-bit torus.
CIPHERTEXT_BYTES = 2520

#: Bootstrapping key size (dominates the public material).
BOOTSTRAP_KEY_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class TFHEPublicKey:
    key_id: int

    @property
    def key_material_bytes(self) -> int:
        return BOOTSTRAP_KEY_BYTES


@dataclass(frozen=True)
class TFHEPrivateKey:
    public: TFHEPublicKey


@dataclass
class TFHEBit:
    """One encrypted bit; ``gates`` counts the bootstrapped gates in its
    history (for cost accounting and tests)."""

    value: bool = field(repr=False)
    key_id: int
    gates: int = 0


class TFHEEngine:
    """Gate-level homomorphic evaluation with a per-engine gate counter."""

    def __init__(self, rng: random.Random = None):
        rng = rng or random.Random()
        self._key_id = rng.getrandbits(63)
        self.gates_evaluated = 0

    def keygen(self) -> TFHEPrivateKey:
        return TFHEPrivateKey(TFHEPublicKey(self._key_id))

    # ---------------------------------------------------------------- io

    def encrypt(self, pk: TFHEPublicKey, bit: bool) -> TFHEBit:
        if pk.key_id != self._key_id:
            raise ValueError("key from a different engine")
        return TFHEBit(bool(bit), pk.key_id)

    def encrypt_int(self, pk: TFHEPublicKey, value: int, bits: int) -> List[TFHEBit]:
        """Two's-complement-free unsigned bit decomposition, LSB first."""
        if value < 0 or value >= (1 << bits):
            raise ValueError(f"{value} does not fit in {bits} unsigned bits")
        return [self.encrypt(pk, bool((value >> i) & 1)) for i in range(bits)]

    def decrypt(self, sk: TFHEPrivateKey, bit: TFHEBit) -> bool:
        if bit.key_id != sk.public.key_id:
            raise ValueError("ciphertext under a different key")
        return bit.value

    def decrypt_int(self, sk: TFHEPrivateKey, bits: Sequence[TFHEBit]) -> int:
        return sum(int(self.decrypt(sk, b)) << i for i, b in enumerate(bits))

    # -------------------------------------------------------------- gates

    def _gate(self, out: bool, *inputs: TFHEBit) -> TFHEBit:
        key_id = inputs[0].key_id
        if any(b.key_id != key_id for b in inputs):
            raise ValueError("mixing ciphertexts under different keys")
        self.gates_evaluated += 1
        return TFHEBit(out, key_id, gates=max(b.gates for b in inputs) + 1)

    def and_(self, a: TFHEBit, b: TFHEBit) -> TFHEBit:
        return self._gate(a.value and b.value, a, b)

    def or_(self, a: TFHEBit, b: TFHEBit) -> TFHEBit:
        return self._gate(a.value or b.value, a, b)

    def xor(self, a: TFHEBit, b: TFHEBit) -> TFHEBit:
        return self._gate(a.value != b.value, a, b)

    def not_(self, a: TFHEBit) -> TFHEBit:
        # NOT is a free (non-bootstrapped) operation in TFHE.
        return TFHEBit(not a.value, a.key_id, gates=a.gates)

    def mux(self, sel: TFHEBit, if_true: TFHEBit, if_false: TFHEBit) -> TFHEBit:
        return self._gate(if_true.value if sel.value else if_false.value, sel, if_true, if_false)

    # ------------------------------------------------------------ circuits

    def add_int(self, a: Sequence[TFHEBit], b: Sequence[TFHEBit]) -> List[TFHEBit]:
        """Ripple-carry adder (~5 gates/bit), dropping the final carry."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        out: List[TFHEBit] = []
        carry = None
        for x, y in zip(a, b):
            s = self.xor(x, y)
            if carry is None:
                out.append(s)
                carry = self.and_(x, y)
            else:
                out.append(self.xor(s, carry))
                carry = self.or_(self.and_(x, y), self.and_(s, carry))
        return out

    def less_than(self, a: Sequence[TFHEBit], b: Sequence[TFHEBit]) -> TFHEBit:
        """Unsigned comparison a < b (~3 gates/bit)."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        result = None
        for x, y in zip(a, b):  # LSB to MSB
            lt = self.and_(self.not_(x), y)
            if result is None:
                result = lt
            else:
                eq = self.not_(self.xor(x, y))
                result = self.or_(lt, self.and_(eq, result))
        return result

    def equals(self, a: Sequence[TFHEBit], b: Sequence[TFHEBit]) -> TFHEBit:
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        acc = None
        for x, y in zip(a, b):
            bit_eq = self.not_(self.xor(x, y))
            acc = bit_eq if acc is None else self.and_(acc, bit_eq)
        return acc

    def max_int(self, a: Sequence[TFHEBit], b: Sequence[TFHEBit]) -> List[TFHEBit]:
        """Oblivious maximum via compare + per-bit mux."""
        a_less = self.less_than(a, b)
        return [self.mux(a_less, y, x) for x, y in zip(a, b)]


def comparison_gate_count(bits: int) -> int:
    """Gates one ``less_than`` needs — the planner's TFHE cost unit.

    One AND for the first bit, then AND+XOR+AND+OR per remaining bit.
    """
    return 4 * bits - 3


def addition_gate_count(bits: int) -> int:
    return 5 * bits - 3
