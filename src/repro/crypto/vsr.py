"""Verifiable Secret Redistribution (VSR).

Between committee vignettes, Arboretum transfers secrets (the private key,
or intermediate MPC state) from one committee to the next by re-sharing
(§5.2, §5.4). Plain re-sharing would let a malicious old-committee member
corrupt the secret undetectably, so each member publishes Feldman
commitments to its sub-share polynomial; new-committee members verify their
sub-shares against the commitments before combining. This mirrors the
Extended VSR protocol [35] that the paper obtained from the Mycelium
authors.

The discrete-log group here is Z_q* for a safe-ish prime q chosen per field;
commitments are g^coeff mod q. Security rests on the hardness of discrete
log in that group, exactly as in Feldman's scheme.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from .backend import get_backend
from .field import PrimeField, next_prime
from .shamir import Share, lagrange_coefficients_at_zero


@dataclass(frozen=True)
class FeldmanCommitment:
    """Commitments g^{a_k} mod q to a sub-share polynomial's coefficients."""

    group_modulus: int
    generator: int
    coefficient_commitments: Tuple[int, ...]

    def expected_commitment(self, x: int, field: PrimeField) -> int:
        """Compute prod_k C_k^{x^k} = g^{poly(x)} for verification."""
        backend = get_backend()
        acc = 1
        exponent = 1
        for c in self.coefficient_commitments:
            acc = (acc * backend.powmod(c, exponent, self.group_modulus)) % self.group_modulus
            exponent = field.mul(exponent, x)
        return acc


@dataclass(frozen=True)
class SubShare:
    """A share of a share: old member ``source`` re-shares to new member ``x``."""

    source: int
    x: int
    y: int


@dataclass(frozen=True)
class RedistributionMessage:
    """Everything one old-committee member publishes during VSR."""

    source: int
    sub_shares: Tuple[SubShare, ...]
    commitment: FeldmanCommitment


@lru_cache(maxsize=16)
def _group_for_modulus(p: int) -> Tuple[int, int]:
    """Cached commitment-group search keyed by the field modulus."""
    k = 2
    while True:
        q = k * p + 1
        if next_prime(q) == q:
            break
        k += 1
    backend = get_backend()
    h = 3
    g = backend.powmod(h, (q - 1) // p, q)
    while g == 1:
        h += 1
        g = backend.powmod(h, (q - 1) // p, q)
    return q, g


def _group_for_field(field: PrimeField) -> Tuple[int, int]:
    """Pick a commitment group of order divisible by the field modulus.

    We use q = smallest prime with q ≡ 1 (mod p) so that elements of order p
    exist, then take g = h^((q-1)/p) for a fixed h. This keeps commitments
    consistent: g^a depends only on a mod p.
    """
    return _group_for_modulus(field.modulus)


class VSRError(Exception):
    """Raised when sub-share verification fails or reconstruction is impossible."""


def redistribute_share(
    old_share: Share,
    threshold: int,
    new_party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
    group: Tuple[int, int] = None,
) -> RedistributionMessage:
    """Re-share one old-committee member's share to the new committee.

    Returns the sub-shares destined for each new member plus the Feldman
    commitment that lets them verify the sub-shares were dealt consistently.
    """
    q, g = group or _group_for_field(field)
    coeffs = [field.reduce(old_share.y)]
    coeffs.extend(field.random_element(rng) for _ in range(threshold))
    commitments = tuple(get_backend().powmod_base_vector(g, coeffs, q))
    sub_shares = []
    for pid in new_party_ids:
        acc = 0
        for c in reversed(coeffs):
            acc = field.add(field.mul(acc, pid), c)
        sub_shares.append(SubShare(old_share.x, pid, acc))
    return RedistributionMessage(
        old_share.x, tuple(sub_shares), FeldmanCommitment(q, g, commitments)
    )


def verify_sub_share(sub: SubShare, commitment: FeldmanCommitment, field: PrimeField) -> bool:
    """Check g^{sub.y} against the published polynomial commitments."""
    lhs = get_backend().powmod(commitment.generator, sub.y, commitment.group_modulus)
    return lhs == commitment.expected_commitment(sub.x, field)


def combine_sub_shares(
    new_party_id: int,
    messages: Sequence[RedistributionMessage],
    field: PrimeField,
) -> Share:
    """Build a new-committee member's share of the original secret.

    Verifies every sub-share against its dealer's commitment (raising
    VSRError on any mismatch), then combines them with the Lagrange weights
    of the dealers' old x-coordinates, so the result is a point on a fresh
    polynomial sharing the *same* secret.
    """
    if not messages:
        raise VSRError("no redistribution messages to combine")
    my_subs = []
    for msg in messages:
        matching = [s for s in msg.sub_shares if s.x == new_party_id]
        if not matching:
            raise VSRError(f"dealer {msg.source} sent no sub-share to party {new_party_id}")
        sub = matching[0]
        if not verify_sub_share(sub, msg.commitment, field):
            raise VSRError(f"sub-share from dealer {msg.source} failed verification")
        my_subs.append(sub)
    xs = [s.source for s in my_subs]
    weights = lagrange_coefficients_at_zero(xs, field)
    y = 0
    for sub, w in zip(my_subs, weights):
        y = field.add(y, field.mul(w, sub.y))
    return Share(new_party_id, y)


def redistribute_secret(
    old_shares: Sequence[Share],
    old_threshold: int,
    new_threshold: int,
    new_party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> List[Share]:
    """Full VSR round: old committee's shares -> new committee's shares.

    Exactly ``old_threshold + 1`` old shares are used (the honest quorum);
    each is verifiably re-shared at degree ``new_threshold`` for the new
    committee.
    """
    if len(old_shares) < old_threshold + 1:
        raise VSRError("not enough old shares for an honest quorum")
    quorum = list(old_shares)[: old_threshold + 1]
    group = _group_for_field(field)
    messages = [
        redistribute_share(s, new_threshold, new_party_ids, field, rng, group)
        for s in quorum
    ]
    return [combine_sub_shares(pid, messages, field) for pid in new_party_ids]


@dataclass(frozen=True)
class ProvenancedSharing:
    """A sharing together with Feldman commitments to its polynomial.

    Extended VSR [35] does not only verify that each dealer re-shared
    *some* value consistently — it also verifies that the value re-shared
    is the dealer's *actual share of the original secret*. That requires
    the original sharing to come with commitments: g^{a_k} for the
    original polynomial's coefficients, from which anyone can compute the
    expected commitment g^{f(i)} for dealer i's share and compare it with
    the constant-term commitment of i's sub-share polynomial.
    """

    shares: Tuple[Share, ...]
    commitment: FeldmanCommitment


def share_secret_with_provenance(
    secret: int,
    threshold: int,
    party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> ProvenancedSharing:
    """Deal a sharing plus the Feldman commitments Extended VSR verifies."""
    q, g = _group_for_field(field)
    coeffs = [field.reduce(secret)]
    coeffs.extend(field.random_element(rng) for _ in range(threshold))
    commitments = tuple(get_backend().powmod_base_vector(g, coeffs, q))
    shares = []
    for pid in party_ids:
        acc = 0
        for c in reversed(coeffs):
            acc = field.add(field.mul(acc, pid), c)
        shares.append(Share(pid, acc))
    return ProvenancedSharing(tuple(shares), FeldmanCommitment(q, g, commitments))


def verify_share_provenance(
    share: Share, original: FeldmanCommitment, field: PrimeField
) -> bool:
    """Check that ``share`` lies on the originally committed polynomial."""
    lhs = get_backend().powmod(original.generator, share.y, original.group_modulus)
    return lhs == original.expected_commitment(share.x, field)


def redistribute_with_provenance(
    sharing: ProvenancedSharing,
    old_threshold: int,
    new_threshold: int,
    new_party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> List[Share]:
    """Extended VSR: re-share while proving each dealer's input share.

    Every dealer's redistribution message must (a) be internally
    consistent (plain VSR) and (b) have a constant-term commitment equal
    to the original polynomial's commitment at the dealer's point — a
    dealer re-sharing a *different* value than its real share is caught
    even though its sub-shares are mutually consistent.
    """
    shares = list(sharing.shares)
    if len(shares) < old_threshold + 1:
        raise VSRError("not enough old shares for an honest quorum")
    for share in shares:
        if not verify_share_provenance(share, sharing.commitment, field):
            raise VSRError(
                f"dealer {share.x}'s input share does not match the original "
                f"commitment (Extended VSR provenance check)"
            )
    quorum = shares[: old_threshold + 1]
    group = (sharing.commitment.group_modulus, sharing.commitment.generator)
    messages = []
    for share in quorum:
        message = redistribute_share(
            share, new_threshold, new_party_ids, field, rng, group
        )
        expected = sharing.commitment.expected_commitment(share.x, field)
        if message.commitment.coefficient_commitments[0] != expected:
            raise VSRError(
                f"dealer {share.x} re-shared a value inconsistent with its "
                f"committed share"
            )
        messages.append(message)
    return [combine_sub_shares(pid, messages, field) for pid in new_party_ids]


def redistribute_vector(
    old_share_vectors: Dict[int, Sequence[Share]],
    old_threshold: int,
    new_threshold: int,
    new_party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> Dict[int, List[Share]]:
    """Redistribute a vector of secrets (e.g. BGV key shares) element-wise."""
    parties = list(old_share_vectors)
    if not parties:
        raise VSRError("no old shares supplied")
    length = len(next(iter(old_share_vectors.values())))
    if any(len(v) != length for v in old_share_vectors.values()):
        raise VSRError("old share vectors have inconsistent lengths")
    out: Dict[int, List[Share]] = {pid: [] for pid in new_party_ids}
    for i in range(length):
        element_shares = [old_share_vectors[p][i] for p in parties]
        new_shares = redistribute_secret(
            element_shares, old_threshold, new_threshold, new_party_ids, field, rng
        )
        for s in new_shares:
            out[s.x].append(s)
    return out
