"""Pluggable accelerated crypto backend with a pure-python oracle.

The sharded runtime made the numpy int64 slot kernels the floor of the
data plane; what remains hot at 10^6+ simulated devices is *bigint*
crypto: Paillier ``r^n mod n²`` pad generation, ``c^λ mod n²`` decryption,
Feldman/VSR commitment exponentiations, Vandermonde share batching, and
the exact (object-dtype) BGV slot path. This module defines the narrow
kernel interface those hot paths go through — and nothing else: key
schedules, protocol logic, digests, and RNG draw schedules all stay in
their own modules, so a backend can only change *how fast* a kernel runs,
never *what* it computes.

Two implementations ship:

* :class:`PureBackend` — the historical pure-python/numpy kernels,
  byte-for-byte the seed semantics. It is always available, always the
  default when nothing faster is importable, and it is the *differential
  oracle*: ``tests/test_backend_equivalence.py`` asserts every other
  backend produces bit-identical ciphertexts, shares, commitments, and
  query digests.
* :class:`AcceleratedBackend` — gmpy2 ``powmod``/``mpz`` for bigint
  batches and (optionally) numba-jitted loops for int64 slot reductions,
  each gated independently so a partial install still helps. Where no
  compiled library is present the backend falls back to *algorithmic*
  accelerations that remain exact — Montgomery batch inversion (one
  modexp for k inverses) — and otherwise delegates to the pure kernels,
  so forcing ``REPRO_CRYPTO_BACKEND=accel`` is always safe.

Selection happens lazily on first use: the ``REPRO_CRYPTO_BACKEND``
environment variable (``pure`` or ``accel``) wins; otherwise ``accel``
is chosen iff gmpy2 imported, else ``pure``. ``repro backends`` prints
the availability/selection table; the active name is surfaced in
``RuntimeStatistics`` and the ``repro run --stats`` / ``repro serve``
output so every benchmark row is attributable to a backend.

Every 3-argument ``pow`` in ``crypto/``, ``mpc/``, and ``runtime/`` must
live here — source-lint rule R7 (``no-raw-modexp``) rejects bigint
modexp written outside this module, so new code cannot silently bypass
the dispatch layer (and with it, the differential-testing oracle).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover
    _gmpy2 = None

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

#: Environment variable forcing backend selection (``pure`` or ``accel``).
BACKEND_ENV_VAR = "REPRO_CRYPTO_BACKEND"

_INT64_MAX = (1 << 63) - 1


def gmpy2_available() -> bool:
    return _gmpy2 is not None


def numba_available() -> bool:
    return _numba is not None


class PureBackend:
    """The seed kernels: Python big ints + numpy. The differential oracle."""

    name = "pure"

    #: Human-readable description of what makes this backend tick.
    detail = "builtin pow / numpy object arrays (always available)"

    @staticmethod
    def available() -> bool:
        return True

    @staticmethod
    def unavailable_reason() -> Optional[str]:
        return None

    # ------------------------------------------------------ bigint modexp

    def powmod(self, base: int, exp: int, mod: int) -> int:
        """``base**exp mod mod`` — the single-shot bigint modexp."""
        return pow(base, exp, mod)

    def powmod_vector(self, bases: Sequence[int], exp: int, mod: int) -> List[int]:
        """Fixed-exponent batch: ``[b**exp mod mod for b in bases]``.

        The Paillier pad shape — one exponent ``n``, many random bases.
        """
        return [pow(base, exp, mod) for base in bases]

    def powmod_base_vector(self, base: int, exps: Sequence[int], mod: int) -> List[int]:
        """Fixed-base batch: ``[base**e mod mod for e in exps]``.

        The Feldman-commitment shape — one generator, many coefficients.
        """
        return [pow(base, exp, mod) for exp in exps]

    def invmod(self, a: int, mod: int) -> int:
        """Modular inverse of ``a``; raises ValueError when none exists."""
        return pow(a, -1, mod)

    def batch_invmod(self, values: Sequence[int], mod: int) -> List[int]:
        """Inverses of many units mod a *prime* — one modexp each here."""
        return [self.invmod(v % mod, mod) for v in values]

    # ------------------------------------------------------- slot kernels

    def slot_add(self, a: np.ndarray, b: np.ndarray, t: int) -> np.ndarray:
        return (a + b) % t

    def slot_sub(self, a: np.ndarray, b: np.ndarray, t: int) -> np.ndarray:
        return (a - b) % t

    def slot_mul(self, a: np.ndarray, b: np.ndarray, t: int) -> np.ndarray:
        return (a * b) % t

    def sum_slots(self, stack: np.ndarray, t: int) -> np.ndarray:
        """Column sums of a (rows, slots) stack, reduced mod t.

        On the int64 layout the reduction is chunked so no partial sum
        exceeds 2^63 (each slot value is < t, so ``chunk`` rows plus the
        running accumulator stay within a signed machine word).
        """
        if stack.dtype == object:
            return np.sum(stack, axis=0) % t
        chunk = max(1, (_INT64_MAX - t) // max(t - 1, 1))
        total = np.zeros(stack.shape[1], dtype=np.int64)
        for start in range(0, stack.shape[0], chunk):
            total = (total + np.sum(stack[start : start + chunk], axis=0)) % t
        return total

    # -------------------------------------------------- Vandermonde batch

    def matmul_mod(self, a: np.ndarray, b: np.ndarray, mod: int) -> np.ndarray:
        """Exact ``(a @ b) % mod`` over object-dtype bigint matrices."""
        return (a @ b) % mod

    def matvec_mod(self, a: np.ndarray, v: np.ndarray, mod: int) -> np.ndarray:
        """Exact ``(a @ v) % mod`` for an object-dtype matrix × vector."""
        return (a @ v) % mod

    # ------------------------------------------------------- lane packing

    def pack_lanes(self, values: Sequence[int], slot_bits: int) -> int:
        """OR ``values[i] << (i*slot_bits)`` into one packed plaintext."""
        packed = 0
        for lane, v in enumerate(values):
            packed |= int(v) << (lane * slot_bits)
        return packed

    def unpack_lanes(self, packed: int, slot_bits: int, lanes: int) -> List[int]:
        """Split a packed plaintext back into ``lanes`` lane values."""
        mask = (1 << slot_bits) - 1
        return [(packed >> (lane * slot_bits)) & mask for lane in range(lanes)]


class AcceleratedBackend(PureBackend):
    """gmpy2/numba-accelerated kernels, bit-identical to the pure oracle.

    Inherits the oracle and overrides kernel-by-kernel, each gated on the
    library that accelerates it, so a machine with gmpy2 but no numba (or
    vice versa) still gets every win that applies. Everything here is a
    *representation* change — mpz arithmetic, jitted loops, batch
    inversion — over the same exact integer math, so outputs are
    convertible back to the oracle's plain ints without loss.
    """

    name = "accel"

    def __init__(self):
        self.uses_gmpy2 = gmpy2_available()
        self.uses_numba = numba_available()
        self._jit_sum_slots = _build_numba_sum_slots() if self.uses_numba else None

    @property
    def detail(self) -> str:  # type: ignore[override]
        parts = []
        parts.append("gmpy2 powmod/mpz" if self.uses_gmpy2 else "no gmpy2")
        parts.append("numba slot loops" if self.uses_numba else "no numba")
        parts.append("batch inversion")
        return ", ".join(parts)

    @staticmethod
    def available() -> bool:
        """Worth auto-selecting only when a compiled library is present."""
        return gmpy2_available() or numba_available()

    @staticmethod
    def unavailable_reason() -> Optional[str]:
        if AcceleratedBackend.available():
            return None
        return "neither gmpy2 nor numba is importable"

    # ------------------------------------------------------ bigint modexp

    def powmod(self, base: int, exp: int, mod: int) -> int:
        if self.uses_gmpy2:
            return int(_gmpy2.powmod(base, exp, mod))
        return super().powmod(base, exp, mod)

    def powmod_vector(self, bases: Sequence[int], exp: int, mod: int) -> List[int]:
        if self.uses_gmpy2:
            mpz_exp, mpz_mod = _gmpy2.mpz(exp), _gmpy2.mpz(mod)
            return [int(_gmpy2.powmod(_gmpy2.mpz(b), mpz_exp, mpz_mod)) for b in bases]
        return super().powmod_vector(bases, exp, mod)

    def powmod_base_vector(self, base: int, exps: Sequence[int], mod: int) -> List[int]:
        if self.uses_gmpy2:
            mpz_base, mpz_mod = _gmpy2.mpz(base), _gmpy2.mpz(mod)
            return [int(_gmpy2.powmod(mpz_base, _gmpy2.mpz(e), mpz_mod)) for e in exps]
        return super().powmod_base_vector(base, exps, mod)

    def invmod(self, a: int, mod: int) -> int:
        if self.uses_gmpy2:
            try:
                return int(_gmpy2.invert(a, mod))
            except ZeroDivisionError as exc:
                # Match builtin pow's typed failure for non-invertible a.
                raise ValueError("base is not invertible for the given modulus") from exc
        return super().invmod(a, mod)

    def batch_invmod(self, values: Sequence[int], mod: int) -> List[int]:
        """Montgomery's trick: k inverses for one modexp + 3(k-1) muls.

        Exact modular arithmetic, so the result is the same integer the
        per-element modexp produces — an algorithmic acceleration that
        needs no compiled library at all (gmpy2 shrinks the constant).
        """
        reduced = [v % mod for v in values]
        if not reduced:
            return []
        if any(v == 0 for v in reduced):
            # 0 has no inverse; defer to the per-element path's error.
            return super().batch_invmod(values, mod)
        prefix = [reduced[0]]
        for v in reduced[1:]:
            prefix.append(prefix[-1] * v % mod)
        inv_all = self.invmod(prefix[-1], mod)
        out = [0] * len(reduced)
        for i in range(len(reduced) - 1, 0, -1):
            out[i] = inv_all * prefix[i - 1] % mod
            inv_all = inv_all * reduced[i] % mod
        out[0] = inv_all
        return out

    # ------------------------------------------------------- slot kernels

    def _mpz_elementwise(self, a: np.ndarray, b: np.ndarray, t, op) -> np.ndarray:
        out = np.empty(len(a), dtype=object)
        for i in range(len(a)):
            out[i] = int(op(a[i], b[i]) % t)
        return out

    def slot_add(self, a: np.ndarray, b: np.ndarray, t: int) -> np.ndarray:
        if a.dtype == object and self.uses_gmpy2:
            return self._mpz_elementwise(a, b, _gmpy2.mpz(t), lambda x, y: x + y)
        return super().slot_add(a, b, t)

    def slot_sub(self, a: np.ndarray, b: np.ndarray, t: int) -> np.ndarray:
        if a.dtype == object and self.uses_gmpy2:
            return self._mpz_elementwise(a, b, _gmpy2.mpz(t), lambda x, y: x - y)
        return super().slot_sub(a, b, t)

    def slot_mul(self, a: np.ndarray, b: np.ndarray, t: int) -> np.ndarray:
        if a.dtype == object and self.uses_gmpy2:
            return self._mpz_elementwise(a, b, _gmpy2.mpz(t), lambda x, y: x * y)
        return super().slot_mul(a, b, t)

    def sum_slots(self, stack: np.ndarray, t: int) -> np.ndarray:
        if stack.dtype != object and self._jit_sum_slots is not None:
            chunk = max(1, (_INT64_MAX - t) // max(t - 1, 1))
            return self._jit_sum_slots(
                np.ascontiguousarray(stack), np.int64(t), np.int64(chunk)
            )
        return super().sum_slots(stack, t)

    # -------------------------------------------------- Vandermonde batch

    def matmul_mod(self, a: np.ndarray, b: np.ndarray, mod: int) -> np.ndarray:
        if not self.uses_gmpy2:
            return super().matmul_mod(a, b, mod)
        mpz = _gmpy2.mpz
        mpz_mod = mpz(mod)
        rows = [[mpz(x) for x in row] for row in a]
        cols = [[mpz(x) for x in col] for col in np.asarray(b).T]
        out = np.empty((len(rows), len(cols)), dtype=object)
        for i, row in enumerate(rows):
            for j, col in enumerate(cols):
                acc = mpz(0)
                for x, y in zip(row, col):
                    acc += x * y
                out[i, j] = int(acc % mpz_mod)
        return out

    def matvec_mod(self, a: np.ndarray, v: np.ndarray, mod: int) -> np.ndarray:
        if not self.uses_gmpy2:
            return super().matvec_mod(a, v, mod)
        mpz = _gmpy2.mpz
        mpz_mod = mpz(mod)
        vec = [mpz(x) for x in v]
        out = np.empty(len(a), dtype=object)
        for i, row in enumerate(a):
            acc = mpz(0)
            for x, y in zip(row, vec):
                acc += mpz(x) * y
            out[i] = int(acc % mpz_mod)
        return out


def _build_numba_sum_slots():  # pragma: no cover - needs numba installed
    """JIT the chunked int64 column-sum reduction (fused loop, no temps)."""

    @_numba.njit(cache=True)
    def jit_sum_slots(stack, t, chunk):
        rows, slots = stack.shape
        total = np.zeros(slots, dtype=np.int64)
        for start in range(0, rows, chunk):
            stop = min(start + chunk, rows)
            for j in range(slots):
                acc = total[j]
                for i in range(start, stop):
                    acc += stack[i, j]
                total[j] = acc % t
        return total

    return jit_sum_slots


_BACKEND_CLASSES = {"pure": PureBackend, "accel": AcceleratedBackend}

_active: Optional[PureBackend] = None
_selection_reason: str = "not yet selected"


def _select() -> PureBackend:
    global _selection_reason
    forced = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if forced:
        if forced not in _BACKEND_CLASSES:
            raise ValueError(
                f"{BACKEND_ENV_VAR}={forced!r} is not a known backend; "
                f"expected one of {sorted(_BACKEND_CLASSES)}"
            )
        _selection_reason = f"forced by {BACKEND_ENV_VAR}={forced}"
        return _BACKEND_CLASSES[forced]()
    if AcceleratedBackend.available():
        _selection_reason = "auto: gmpy2/numba importable"
        return AcceleratedBackend()
    _selection_reason = "auto: accelerated libraries unavailable, pure fallback"
    return PureBackend()


def get_backend() -> PureBackend:
    """The active backend (selected lazily on first use)."""
    global _active
    if _active is None:
        _active = _select()
    return _active


def active_backend_name() -> str:
    return get_backend().name


def selection_reason() -> str:
    get_backend()
    return _selection_reason


def set_backend(name: Optional[str]) -> PureBackend:
    """Force the active backend (``None`` re-runs auto-selection).

    Used by the differential suite and the per-backend benchmark series;
    production code selects via the environment variable only.
    """
    global _active, _selection_reason
    if name is None:
        _active = None
        return get_backend()
    if name not in _BACKEND_CLASSES:
        raise ValueError(f"unknown backend {name!r}; expected {sorted(_BACKEND_CLASSES)}")
    _active = _BACKEND_CLASSES[name]()
    _selection_reason = f"forced programmatically ({name})"
    return _active


class use_backend:
    """Context manager pinning the active backend (tests/benchmarks)."""

    def __init__(self, name: str):
        self.name = name
        self._saved = None
        self._saved_reason = None

    def __enter__(self) -> PureBackend:
        global _active, _selection_reason
        self._saved = _active
        self._saved_reason = _selection_reason
        return set_backend(self.name)

    def __exit__(self, *exc) -> None:
        global _active, _selection_reason
        _active = self._saved
        _selection_reason = self._saved_reason


def describe_backends() -> List[Dict[str, object]]:
    """Availability/selection table backing ``repro backends``."""
    active = get_backend()
    rows = []
    for name, cls in sorted(_BACKEND_CLASSES.items()):
        instance = cls() if name != active.name else active
        rows.append(
            {
                "backend": name,
                "available": cls.available(),
                "unavailable_reason": cls.unavailable_reason(),
                "detail": instance.detail,
                "selected": name == active.name,
                "selection_reason": _selection_reason if name == active.name else None,
            }
        )
    return rows
