"""A functional model of the BGV leveled FHE scheme.

Arboretum's prototype uses BGV (§6) with SIMD slot packing: a typical query
uses plaintext modulus ~2^30, a 135-bit ciphertext-modulus prime, and
polynomial degree 2^15 (= 32,768 slots per ciphertext). The planner cares
about BGV's *interface and cost structure* — slots, plaintext modulus,
multiplicative depth, per-operation cost — not about lattice arithmetic, so
this module is a faithful behavioural model rather than an RNS
implementation (see DESIGN.md's substitution table):

* ciphertexts carry their slot vector internally, but the only sanctioned
  way to read it is ``decrypt`` with the matching private key;
* every homomorphic operation consumes noise budget the way BGV does
  (additions cost almost nothing, multiplications consume a level), and a
  ciphertext whose budget is exhausted *fails to decrypt*, just like the
  real scheme;
* parameter selection follows the homomorphic-encryption security standard
  tables the paper cites [6]: bigger ciphertext moduli require bigger ring
  degrees for the same security level.

All performance numbers come from the calibrated cost model, matching the
paper's own extrapolation methodology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

# Security-standard table (ciphertext-modulus bits -> minimum log2(ring
# degree) for >=128-bit security), coarsened from the HE standard [6].
_SECURITY_TABLE = [
    (27, 10),
    (54, 11),
    (109, 12),
    (218, 13),
    (438, 14),
    (881, 15),
]


def min_ring_degree_log2(ciphertext_modulus_bits: int) -> int:
    """Smallest log2(N) that keeps >=128-bit security for a modulus size."""
    for max_bits, log_degree in _SECURITY_TABLE:
        if ciphertext_modulus_bits <= max_bits:
            return log_degree
    raise ValueError(
        f"no standard parameter set covers a {ciphertext_modulus_bits}-bit modulus"
    )


@dataclass(frozen=True)
class BGVParams:
    """BGV parameter set.

    ``plaintext_modulus`` bounds slot values; ``ring_degree_log2`` fixes the
    number of SIMD slots; ``ciphertext_modulus_bits`` determines both the
    ciphertext size and the available noise budget (levels).
    """

    plaintext_modulus: int = 1 << 30
    ring_degree_log2: int = 15
    ciphertext_modulus_bits: int = 135

    def __post_init__(self):
        if self.plaintext_modulus < 2:
            raise ValueError("plaintext modulus must be >= 2")
        required = min_ring_degree_log2(self.ciphertext_modulus_bits)
        if self.ring_degree_log2 < required:
            raise ValueError(
                f"ring degree 2^{self.ring_degree_log2} is insecure for a "
                f"{self.ciphertext_modulus_bits}-bit modulus; need >= 2^{required}"
            )

    @property
    def slots(self) -> int:
        return 1 << self.ring_degree_log2

    @property
    def max_levels(self) -> int:
        """Multiplicative depth this modulus supports.

        Each multiplication consumes roughly log2(plaintext_modulus) + ~20
        bits of modulus; what is left after accounting for the base noise is
        the level budget.
        """
        per_level = self.plaintext_modulus.bit_length() + 20
        budget = self.ciphertext_modulus_bits - 30  # base noise floor
        return max(0, budget // per_level)

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized ciphertext size: 2 ring elements of N coefficients."""
        return 2 * self.slots * ((self.ciphertext_modulus_bits + 7) // 8)

    @property
    def public_key_bytes(self) -> int:
        return self.ciphertext_bytes

    def for_depth(self, depth: int, plaintext_modulus: int = None) -> "BGVParams":
        """Return the smallest standard parameter set supporting ``depth``.

        The planner calls this after range inference (§4.4) to pick the
        plaintext modulus and a ciphertext modulus big enough for the
        multiplicative depth the instantiated operators need.
        """
        t = plaintext_modulus or self.plaintext_modulus
        per_level = t.bit_length() + 20
        needed_bits = 30 + per_level * max(depth, 0) + 5
        needed_bits = max(needed_bits, 60)
        return BGVParams(
            plaintext_modulus=t,
            ring_degree_log2=min_ring_degree_log2(needed_bits),
            ciphertext_modulus_bits=needed_bits,
        )


@dataclass(frozen=True)
class BGVPublicKey:
    params: BGVParams
    key_id: int


@dataclass(frozen=True)
class BGVPrivateKey:
    public: BGVPublicKey

    @property
    def params(self) -> BGVParams:
        return self.public.params


@dataclass
class BGVCiphertext:
    """A ciphertext holding one value per SIMD slot.

    ``level`` counts consumed multiplicative levels; once it exceeds
    ``params.max_levels`` the ciphertext is undecryptable (noise overflow),
    mirroring real BGV behaviour.
    """

    slots: Tuple[int, ...] = field(repr=False)
    key_id: int
    params: BGVParams
    level: int = 0

    def __post_init__(self):
        if len(self.slots) != self.params.slots:
            raise ValueError("slot vector length must equal the ring degree")


class NoiseBudgetExceeded(Exception):
    """Raised when an operation chain exceeds the parameter set's depth."""


def keygen(params: BGVParams, rng: random.Random = None) -> BGVPrivateKey:
    """Generate a keypair for the given parameter set."""
    rng = rng or random.Random()
    return BGVPrivateKey(BGVPublicKey(params, rng.getrandbits(63)))


def _pad(values: Sequence[int], params: BGVParams) -> Tuple[int, ...]:
    t = params.plaintext_modulus
    padded = [v % t for v in values]
    if len(padded) > params.slots:
        raise ValueError(
            f"{len(padded)} values do not fit in {params.slots} slots"
        )
    padded.extend([0] * (params.slots - len(padded)))
    return tuple(padded)


def encrypt(pk: BGVPublicKey, values: Sequence[int]) -> BGVCiphertext:
    """Pack ``values`` into SIMD slots (zero-padded) and encrypt."""
    return BGVCiphertext(_pad(values, pk.params), pk.key_id, pk.params)


def decrypt(sk: BGVPrivateKey, ct: BGVCiphertext, count: int = None) -> List[int]:
    """Decrypt the first ``count`` slots (all slots by default).

    Fails if the key does not match or the noise budget is exhausted.
    """
    if ct.key_id != sk.public.key_id:
        raise ValueError("ciphertext was produced under a different key")
    if ct.level > ct.params.max_levels:
        raise NoiseBudgetExceeded(
            f"level {ct.level} exceeds budget {ct.params.max_levels}"
        )
    values = list(ct.slots)
    return values if count is None else values[:count]


def _check_compatible(a: BGVCiphertext, b: BGVCiphertext) -> None:
    if a.key_id != b.key_id:
        raise ValueError("ciphertexts under different keys cannot be combined")


def add(a: BGVCiphertext, b: BGVCiphertext) -> BGVCiphertext:
    """Slot-wise homomorphic addition; noise grows negligibly."""
    _check_compatible(a, b)
    t = a.params.plaintext_modulus
    slots = tuple((x + y) % t for x, y in zip(a.slots, b.slots))
    return BGVCiphertext(slots, a.key_id, a.params, max(a.level, b.level))


def sub(a: BGVCiphertext, b: BGVCiphertext) -> BGVCiphertext:
    _check_compatible(a, b)
    t = a.params.plaintext_modulus
    slots = tuple((x - y) % t for x, y in zip(a.slots, b.slots))
    return BGVCiphertext(slots, a.key_id, a.params, max(a.level, b.level))


def multiply(a: BGVCiphertext, b: BGVCiphertext) -> BGVCiphertext:
    """Slot-wise homomorphic multiplication; consumes one level."""
    _check_compatible(a, b)
    t = a.params.plaintext_modulus
    slots = tuple((x * y) % t for x, y in zip(a.slots, b.slots))
    return BGVCiphertext(slots, a.key_id, a.params, max(a.level, b.level) + 1)


def add_plain(ct: BGVCiphertext, values: Sequence[int]) -> BGVCiphertext:
    t = ct.params.plaintext_modulus
    padded = _pad(values, ct.params)
    slots = tuple((x + y) % t for x, y in zip(ct.slots, padded))
    return BGVCiphertext(slots, ct.key_id, ct.params, ct.level)


def multiply_plain(ct: BGVCiphertext, values: Sequence[int]) -> BGVCiphertext:
    """Plaintext multiplication; cheaper noise-wise than ct-ct multiply."""
    t = ct.params.plaintext_modulus
    padded = _pad(values, ct.params)
    slots = tuple((x * y) % t for x, y in zip(ct.slots, padded))
    return BGVCiphertext(slots, ct.key_id, ct.params, ct.level + 1)


def rotate(ct: BGVCiphertext, k: int) -> BGVCiphertext:
    """Cyclically rotate slots left by k (a Galois automorphism in BGV)."""
    n = ct.params.slots
    k %= n
    slots = ct.slots[k:] + ct.slots[:k]
    return BGVCiphertext(slots, ct.key_id, ct.params, ct.level)


def sum_ciphertexts(cts: Sequence[BGVCiphertext]) -> BGVCiphertext:
    """Fold homomorphic addition over a non-empty ciphertext sequence."""
    if not cts:
        raise ValueError("cannot sum zero ciphertexts")
    acc = cts[0]
    for ct in cts[1:]:
        acc = add(acc, ct)
    return acc


def total_sum_slots(ct: BGVCiphertext, width: int) -> BGVCiphertext:
    """Sum the first ``width`` slots into slot 0 via rotate-and-add.

    This is the standard log-depth SIMD reduction; it uses rotations only,
    so it consumes no multiplicative levels.
    """
    acc = ct
    shift = 1
    while shift < width:
        acc = add(acc, rotate(acc, shift))
        shift *= 2
    return acc
