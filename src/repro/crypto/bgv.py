"""A functional model of the BGV leveled FHE scheme.

Arboretum's prototype uses BGV (§6) with SIMD slot packing: a typical query
uses plaintext modulus ~2^30, a 135-bit ciphertext-modulus prime, and
polynomial degree 2^15 (= 32,768 slots per ciphertext). The planner cares
about BGV's *interface and cost structure* — slots, plaintext modulus,
multiplicative depth, per-operation cost — not about lattice arithmetic, so
this module is a faithful behavioural model rather than an RNS
implementation (see DESIGN.md's substitution table):

* ciphertexts carry their slot vector internally, but the only sanctioned
  way to read it is ``decrypt`` with the matching private key;
* every homomorphic operation consumes noise budget the way BGV does
  (additions cost almost nothing, multiplications consume a level), and a
  ciphertext whose budget is exhausted *fails to decrypt*, just like the
  real scheme;
* parameter selection follows the homomorphic-encryption security standard
  tables the paper cites [6]: bigger ciphertext moduli require bigger ring
  degrees for the same security level.

Slot vectors are backed by numpy arrays so the homomorphic operations run
as array kernels instead of interpreted per-slot loops. Two layouts exist:

* an ``int64`` fast path, taken whenever every intermediate a kernel can
  produce fits a machine word — a single slot product is bounded by
  ``(t-1)^2``, so the fast path requires ``(t-1)^2 <= 2^63 - 1``
  (i.e. ``t <= ~3.04e9``; the paper-typical ``t = 2^30`` qualifies), and
  ``sum_ciphertexts`` additionally chunks its stacked reduction so partial
  sums stay below ``2^63``;
* an ``object``-dtype fallback for larger plaintext moduli, which keeps
  exact Python big-int arithmetic elementwise.

Both layouts produce slot values *byte-identical* to the historical
per-element tuple implementation (``tests/test_bgv_kernels.py`` holds the
equivalence suite), so digests, seeded replays, and the planner's cost
accounting are unaffected by the vectorization.

All performance numbers come from the calibrated cost model, matching the
paper's own extrapolation methodology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .backend import get_backend

# Security-standard table (ciphertext-modulus bits -> minimum log2(ring
# degree) for >=128-bit security), coarsened from the HE standard [6].
_SECURITY_TABLE = [
    (27, 10),
    (54, 11),
    (109, 12),
    (218, 13),
    (438, 14),
    (881, 15),
]

_INT64_MAX = (1 << 63) - 1


def min_ring_degree_log2(ciphertext_modulus_bits: int) -> int:
    """Smallest log2(N) that keeps >=128-bit security for a modulus size."""
    for max_bits, log_degree in _SECURITY_TABLE:
        if ciphertext_modulus_bits <= max_bits:
            return log_degree
    raise ValueError(
        f"no standard parameter set covers a {ciphertext_modulus_bits}-bit modulus"
    )


def _fast_path(plaintext_modulus: int) -> bool:
    """True when one slot product (t-1)^2 fits a signed 64-bit word.

    Measured bound: ``isqrt(2^63 - 1) = 3_037_000_499``, so the int64
    layout is exact iff ``t - 1 <= 3_037_000_499`` (t <= 3_037_000_500);
    at ``t = 3_037_000_501`` the worst-case slot product
    ``(t-1)^2 = 2^63 + 2_116_348_418_279_907_396`` overflows and the
    object-dtype fallback takes over. The paper-typical ``t = 2^30``
    sits comfortably inside the fast path.
    """
    return (plaintext_modulus - 1) * (plaintext_modulus - 1) <= _INT64_MAX


@dataclass(frozen=True)
class BGVParams:
    """BGV parameter set.

    ``plaintext_modulus`` bounds slot values; ``ring_degree_log2`` fixes the
    number of SIMD slots; ``ciphertext_modulus_bits`` determines both the
    ciphertext size and the available noise budget (levels).
    """

    plaintext_modulus: int = 1 << 30
    ring_degree_log2: int = 15
    ciphertext_modulus_bits: int = 135

    def __post_init__(self):
        if self.plaintext_modulus < 2:
            raise ValueError("plaintext modulus must be >= 2")
        required = min_ring_degree_log2(self.ciphertext_modulus_bits)
        if self.ring_degree_log2 < required:
            raise ValueError(
                f"ring degree 2^{self.ring_degree_log2} is insecure for a "
                f"{self.ciphertext_modulus_bits}-bit modulus; need >= 2^{required}"
            )

    @property
    def slots(self) -> int:
        return 1 << self.ring_degree_log2

    @property
    def slot_dtype(self):
        """numpy dtype backing slot vectors under these parameters."""
        return np.int64 if _fast_path(self.plaintext_modulus) else object

    @property
    def max_levels(self) -> int:
        """Multiplicative depth this modulus supports.

        Each multiplication consumes roughly log2(plaintext_modulus) + ~20
        bits of modulus; what is left after accounting for the base noise is
        the level budget.
        """
        per_level = self.plaintext_modulus.bit_length() + 20
        budget = self.ciphertext_modulus_bits - 30  # base noise floor
        return max(0, budget // per_level)

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized ciphertext size: 2 ring elements of N coefficients."""
        return 2 * self.slots * ((self.ciphertext_modulus_bits + 7) // 8)

    @property
    def public_key_bytes(self) -> int:
        return self.ciphertext_bytes

    def for_depth(self, depth: int, plaintext_modulus: Optional[int] = None) -> "BGVParams":
        """Return the smallest standard parameter set supporting ``depth``.

        The planner calls this after range inference (§4.4) to pick the
        plaintext modulus and a ciphertext modulus big enough for the
        multiplicative depth the instantiated operators need.
        """
        t = plaintext_modulus or self.plaintext_modulus
        per_level = t.bit_length() + 20
        needed_bits = 30 + per_level * max(depth, 0) + 5
        needed_bits = max(needed_bits, 60)
        return BGVParams(
            plaintext_modulus=t,
            ring_degree_log2=min_ring_degree_log2(needed_bits),
            ciphertext_modulus_bits=needed_bits,
        )


@dataclass(frozen=True)
class BGVPublicKey:
    params: BGVParams
    key_id: int


@dataclass(frozen=True)
class BGVPrivateKey:
    public: BGVPublicKey

    @property
    def params(self) -> BGVParams:
        return self.public.params


@dataclass
class BGVCiphertext:
    """A ciphertext holding one value per SIMD slot.

    ``slots`` is a numpy array (int64 fast path or object-dtype fallback,
    see module docstring); sequences handed in by ``encrypt`` are coerced.
    ``level`` counts consumed multiplicative levels; once it exceeds
    ``params.max_levels`` the ciphertext is undecryptable (noise overflow),
    mirroring real BGV behaviour.
    """

    slots: np.ndarray = field(repr=False)
    key_id: int
    params: BGVParams
    level: int = 0

    def __post_init__(self):
        if len(self.slots) != self.params.slots:
            raise ValueError("slot vector length must equal the ring degree")
        if not isinstance(self.slots, np.ndarray):
            self.slots = _as_slot_array(self.slots, self.params)


class NoiseBudgetExceeded(Exception):
    """Raised when an operation chain exceeds the parameter set's depth."""


def keygen(params: BGVParams, rng: Optional[random.Random] = None) -> BGVPrivateKey:
    """Generate a keypair for the given parameter set."""
    rng = rng or random.Random()
    return BGVPrivateKey(BGVPublicKey(params, rng.getrandbits(63)))


def _as_slot_array(values: Sequence[int], params: BGVParams) -> np.ndarray:
    """Coerce already-reduced slot values into the canonical array layout."""
    dtype = params.slot_dtype
    if isinstance(values, np.ndarray) and values.dtype == np.dtype(dtype):
        return values
    return np.array([int(v) for v in values], dtype=dtype)


def _pad(values: Sequence[int], params: BGVParams) -> np.ndarray:
    """Reduce mod t and zero-pad to the ring degree, as an array."""
    t = params.plaintext_modulus
    if len(values) > params.slots:
        raise ValueError(
            f"{len(values)} values do not fit in {params.slots} slots"
        )
    dtype = params.slot_dtype
    padded = np.zeros(params.slots, dtype=dtype)
    if dtype is not object:
        try:
            arr = np.asarray(values, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            # Inputs wider than a machine word: reduce in Python first.
            arr = np.asarray([v % t for v in values], dtype=np.int64)
        padded[: len(arr)] = arr % t
    else:
        for i, v in enumerate(values):
            padded[i] = int(v) % t
    return padded


def encrypt(pk: BGVPublicKey, values: Sequence[int]) -> BGVCiphertext:
    """Pack ``values`` into SIMD slots (zero-padded) and encrypt."""
    return BGVCiphertext(_pad(values, pk.params), pk.key_id, pk.params)


def decrypt(sk: BGVPrivateKey, ct: BGVCiphertext, count: int = None) -> List[int]:
    """Decrypt the first ``count`` slots (all slots by default).

    Fails if the key does not match or the noise budget is exhausted.
    Returned values are plain Python ints regardless of the slot layout.
    """
    if ct.key_id != sk.public.key_id:
        raise ValueError("ciphertext was produced under a different key")
    if ct.level > ct.params.max_levels:
        raise NoiseBudgetExceeded(
            f"level {ct.level} exceeds budget {ct.params.max_levels}"
        )
    values = ct.slots.tolist()
    return values if count is None else values[:count]


def _check_compatible(a: BGVCiphertext, b: BGVCiphertext) -> None:
    if a.key_id != b.key_id:
        raise ValueError("ciphertexts under different keys cannot be combined")


def add(a: BGVCiphertext, b: BGVCiphertext) -> BGVCiphertext:
    """Slot-wise homomorphic addition; noise grows negligibly."""
    _check_compatible(a, b)
    t = a.params.plaintext_modulus
    slots = get_backend().slot_add(a.slots, b.slots, t)
    return BGVCiphertext(slots, a.key_id, a.params, max(a.level, b.level))


def sub(a: BGVCiphertext, b: BGVCiphertext) -> BGVCiphertext:
    _check_compatible(a, b)
    t = a.params.plaintext_modulus
    slots = get_backend().slot_sub(a.slots, b.slots, t)
    return BGVCiphertext(slots, a.key_id, a.params, max(a.level, b.level))


def multiply(a: BGVCiphertext, b: BGVCiphertext) -> BGVCiphertext:
    """Slot-wise homomorphic multiplication; consumes one level."""
    _check_compatible(a, b)
    t = a.params.plaintext_modulus
    slots = get_backend().slot_mul(a.slots, b.slots, t)
    return BGVCiphertext(slots, a.key_id, a.params, max(a.level, b.level) + 1)


def add_plain(ct: BGVCiphertext, values: Sequence[int]) -> BGVCiphertext:
    t = ct.params.plaintext_modulus
    padded = _pad(values, ct.params)
    slots = get_backend().slot_add(ct.slots, padded, t)
    return BGVCiphertext(slots, ct.key_id, ct.params, ct.level)


def multiply_plain(ct: BGVCiphertext, values: Sequence[int]) -> BGVCiphertext:
    """Plaintext multiplication; cheaper noise-wise than ct-ct multiply."""
    t = ct.params.plaintext_modulus
    padded = _pad(values, ct.params)
    slots = get_backend().slot_mul(ct.slots, padded, t)
    return BGVCiphertext(slots, ct.key_id, ct.params, ct.level + 1)


def rotate(ct: BGVCiphertext, k: int) -> BGVCiphertext:
    """Cyclically rotate slots left by k (a Galois automorphism in BGV).

    Negative ``k`` rotates right, matching Python slice semantics of the
    historical tuple implementation (``k %= n`` first).
    """
    n = ct.params.slots
    k %= n
    slots = np.roll(ct.slots, -k)
    return BGVCiphertext(slots, ct.key_id, ct.params, ct.level)


def sum_ciphertexts(cts: Sequence[BGVCiphertext]) -> BGVCiphertext:
    """Sum a non-empty ciphertext sequence with one stacked reduction.

    Equivalent to folding :func:`add` left-to-right (field addition is
    associative and every partial result is reduced mod t), but performed
    as one stacked column reduction in the crypto backend. On the int64
    fast path the backend chunks the reduction so no partial sum can
    exceed 2^63.
    """
    if not cts:
        raise ValueError("cannot sum zero ciphertexts")
    first = cts[0]
    for ct in cts[1:]:
        _check_compatible(first, ct)
    t = first.params.plaintext_modulus
    level = max(ct.level for ct in cts)
    stack = np.stack([ct.slots for ct in cts])
    total = get_backend().sum_slots(stack, t)
    return BGVCiphertext(total, first.key_id, first.params, level)


def total_sum_slots(ct: BGVCiphertext, width: int) -> BGVCiphertext:
    """Sum the first ``width`` slots into slot 0 via rotate-and-add.

    This is the standard log-depth SIMD reduction; it uses rotations only,
    so it consumes no multiplicative levels.

    Precondition: every slot at index >= ``width`` must be zero (the
    zero-padding :func:`encrypt` establishes). The rotate-and-add ladder
    folds *every* slot toward slot 0, so stale non-zero slots beyond
    ``width`` — e.g. left behind by earlier rotations or by a previous
    ``total_sum_slots`` — would silently corrupt the total. Violations
    raise ``ValueError`` instead of folding garbage.
    """
    if width < 1:
        raise ValueError("total_sum_slots needs a positive width")
    if width < ct.params.slots and bool(np.any(ct.slots[width:])):
        raise ValueError(
            f"slots beyond width {width} are not all zero; rotate-and-add "
            "would fold stale slot values into the total (re-encrypt or "
            "mask the tail first)"
        )
    acc = ct
    shift = 1
    while shift < width:
        acc = add(acc, rotate(acc, shift))
        shift *= 2
    return acc
