"""Prime-field arithmetic used by the secret-sharing and MPC layers.

Arboretum's MPC committees (§6) run SPDZ-wise Shamir over a finite field
whose prime modulus is configurable — for the key-generation and decryption
MPCs it is set to the BGV ciphertext modulus. This module provides the field
abstraction, modular inverses, and deterministic prime generation for the
moduli the rest of the crypto stack needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .backend import get_backend

# A 127-bit Mersenne prime: large enough for 40-bit statistical security with
# 46-bit fixpoint values (§6: 30 integer bits + 16 fraction bits), and fast
# because reduction is cheap for Python big ints.
MERSENNE_127 = (1 << 127) - 1

# A 61-bit Mersenne prime, used for tests and small committees.
MERSENNE_61 = (1 << 61) - 1

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def is_probable_prime(
    n: int, rounds: int = 32, rng: Optional[random.Random] = None
) -> bool:
    """Miller–Rabin primality test.

    Deterministic witnesses are used for n < 3.3e24; above that we fall back
    to random witnesses drawn from ``rng`` (or a fixed-seed generator so the
    result is reproducible).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < 3317044064679887385961981:
        witnesses = _SMALL_PRIMES[:13]
    else:
        rng = rng or random.Random(0xA5B0)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    backend = get_backend()
    for a in witnesses:
        x = backend.powmod(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PrimeField:
    """The field Z_p for a prime modulus p.

    All MPC and secret-sharing arithmetic in this repo goes through a
    PrimeField so that the modulus is explicit and shared values from
    different fields can never be mixed silently.
    """

    modulus: int

    def __post_init__(self):
        if self.modulus < 2:
            raise ValueError("field modulus must be >= 2")

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    def reduce(self, x):
        """Reduce a scalar or numpy array into [0, p).

        ``reduce``/``add``/``sub``/``mul`` accept either Python ints or
        object-dtype numpy arrays (elementwise big-int arithmetic); the
        batched Shamir kernels in :mod:`repro.crypto.shamir` rely on this.
        """
        return x % self.modulus

    def add(self, a, b):
        return (a + b) % self.modulus

    def sub(self, a, b):
        return (a - b) % self.modulus

    def mul(self, a, b):
        return (a * b) % self.modulus

    def to_array(self, values: Sequence[int]) -> np.ndarray:
        """Reduce a value sequence into an object-dtype field-element array.

        Object dtype keeps exact Python big-int semantics elementwise (the
        moduli here exceed 64 bits, so machine-word dtypes would overflow),
        while still enabling numpy's vectorized dispatch for matrix products
        and broadcast reductions.
        """
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v % self.modulus
        return arr

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        a %= self.modulus
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in a field")
        return get_backend().powmod(a, self.modulus - 2, self.modulus)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return get_backend().powmod(a % self.modulus, e, self.modulus)

    def random_element(self, rng: random.Random) -> int:
        return rng.randrange(self.modulus)

    def random_nonzero(self, rng: random.Random) -> int:
        return rng.randrange(1, self.modulus)

    # Signed encoding: values in [-(p-1)/2, (p-1)/2] map to field elements.
    # MPC fixpoint arithmetic (§6) relies on this to carry negative noise.

    def encode_signed(self, x: int) -> int:
        half = self.modulus // 2
        if not -half <= x <= half:
            raise OverflowError(f"{x} does not fit the signed range of Z_{self.modulus}")
        return x % self.modulus

    def decode_signed(self, a: int) -> int:
        a %= self.modulus
        if a > self.modulus // 2:
            return a - self.modulus
        return a


#: Default field for committee MPCs (tests and the runtime both use it).
DEFAULT_FIELD = PrimeField(MERSENNE_127)
