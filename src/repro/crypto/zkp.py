"""Zero-knowledge proofs of well-formed inputs (§5.3).

Participants upload encrypted data together with a proof that the plaintext
is well-formed — for categorical queries, that it is a one-hot encoding; for
numerical queries, that every value lies in the declared range. The paper
uses ZoKrates with the bellman backend and the Groth16 scheme, with signed
proofs to stop replay (G16 is malleable).

We substitute a commitment-based proof object whose *verification logic is
real* for the statements Arboretum needs: a verifier with access to the
encryption randomness trapdoor (our simulated-network aggregator) actually
recomputes the statement and rejects malformed inputs, and replayed proofs
fail because the proof is bound to the uploader and round. Proof sizes and
verification times are metered through the calibrated cost model, matching
the paper's methodology (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

#: Groth16 proof size: 2 G1 + 1 G2 elements on BN254 ≈ 192 bytes, plus the
#: signature binding it to the uploader (64 bytes).
GROTH16_PROOF_BYTES = 192 + 64


class InvalidProof(Exception):
    """Raised when a proof fails verification."""


@dataclass(frozen=True)
class Statement:
    """What the proof claims about the (hidden) plaintext vector."""

    kind: str  # "one_hot" or "range"
    length: int
    low: int = 0
    high: int = 1

    def holds_for(self, values: Sequence[int]) -> bool:
        if len(values) != self.length:
            return False
        if self.kind == "one_hot":
            return all(v in (0, 1) for v in values) and sum(values) == 1
        if self.kind == "range":
            return all(self.low <= v <= self.high for v in values)
        raise ValueError(f"unknown statement kind {self.kind!r}")


@dataclass(frozen=True)
class InputProof:
    """A proof object bound to one uploader, round, and ciphertext digest.

    ``witness_digest`` commits to the plaintext; the simulated verifier
    recomputes it from the witness the prover handed to the (trusted-setup)
    verification key holder. ``binding`` ties the proof to (device, round,
    ciphertext) so replaying it for another upload fails.
    """

    statement: Statement
    device_id: int
    round_number: int
    ciphertext_digest: bytes
    witness_digest: bytes
    binding: bytes

    @property
    def size_bytes(self) -> int:
        return GROTH16_PROOF_BYTES


def _digest_values(values: Sequence[int], salt: bytes) -> bytes:
    h = hashlib.sha256(salt)
    for v in values:
        h.update(str(int(v)).encode())
        h.update(b",")
    return h.digest()


def _binding(device_id: int, round_number: int, ct_digest: bytes, witness_digest: bytes) -> bytes:
    h = hashlib.sha256()
    h.update(device_id.to_bytes(8, "big"))
    h.update(round_number.to_bytes(8, "big"))
    h.update(ct_digest)
    h.update(witness_digest)
    return h.digest()


def prove(
    statement: Statement,
    values: Sequence[int],
    device_id: int,
    round_number: int,
    ciphertext_digest: bytes,
) -> InputProof:
    """Produce a proof that ``values`` satisfies ``statement``.

    A dishonest prover can call this on values that do NOT satisfy the
    statement (we deliberately allow it, so tests and the runtime can inject
    malformed inputs); verification will then fail.
    """
    salt = ciphertext_digest[:8]
    witness_digest = _digest_values(values, salt)
    return InputProof(
        statement=statement,
        device_id=device_id,
        round_number=round_number,
        ciphertext_digest=ciphertext_digest,
        witness_digest=witness_digest,
        binding=_binding(device_id, round_number, ciphertext_digest, witness_digest),
    )


def verify(proof: InputProof, values: Sequence[int]) -> bool:
    """Verify a proof against the witness values.

    In the deployed system the verifier never sees the witness — the SNARK
    checks the arithmetic circuit directly. In our simulated network the
    aggregator holds the trapdoor witness handed over at upload time, so
    verification both (a) checks the statement actually holds and (b) checks
    the proof is bound to this exact upload (anti-replay).
    """
    salt = proof.ciphertext_digest[:8]
    if _digest_values(values, salt) != proof.witness_digest:
        return False
    expected = _binding(
        proof.device_id, proof.round_number, proof.ciphertext_digest, proof.witness_digest
    )
    if proof.binding != expected:
        return False
    return proof.statement.holds_for(values)


def verify_or_raise(proof: InputProof, values: Sequence[int]) -> None:
    if not verify(proof, values):
        raise InvalidProof(
            f"device {proof.device_id} submitted a malformed input "
            f"(statement {proof.statement.kind!r})"
        )


def one_hot_statement(categories: int) -> Statement:
    """Statement for a one-hot categorical upload over ``categories`` bins."""
    return Statement(kind="one_hot", length=categories)


def range_statement(length: int, low: int, high: int) -> Statement:
    """Statement for a numeric upload with per-element bounds."""
    return Statement(kind="range", length=length, low=low, high=high)
