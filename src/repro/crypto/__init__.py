"""Cryptographic substrate: fields, secret sharing, AHE, FHE model, Merkle
trees, sortition, verifiable secret redistribution, and input ZKPs.

See DESIGN.md for the substitution table mapping each module to the
primitive the paper's C++ prototype used.
"""

from .backend import active_backend_name, get_backend, use_backend
from .field import DEFAULT_FIELD, PrimeField
from .merkle import MerkleTree, verify_inclusion
from .shamir import Share, reconstruct_secret, share_secret

__all__ = [
    "DEFAULT_FIELD",
    "PrimeField",
    "MerkleTree",
    "verify_inclusion",
    "Share",
    "share_secret",
    "reconstruct_secret",
    "active_backend_name",
    "get_backend",
    "use_backend",
]
