"""Shamir secret sharing over a prime field.

This is the substrate for Arboretum's honest-majority committee MPCs (§6,
"SPDZ-wise Shamir") and for Verifiable Secret Redistribution between
committees (§5.2, §5.4). Shares are (x, y) points on a random polynomial of
degree t whose constant term is the secret; any t+1 shares reconstruct, any
t reveal nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from .field import PrimeField


@dataclass(frozen=True)
class Share:
    """One party's share: the evaluation of the sharing polynomial at ``x``."""

    x: int
    y: int


def _eval_poly(coeffs: Sequence[int], x: int, field: PrimeField) -> int:
    """Evaluate a polynomial (coeffs[0] = constant term) at x via Horner."""
    acc = 0
    for c in reversed(coeffs):
        acc = field.add(field.mul(acc, x), c)
    return acc


def share_secret(
    secret: int,
    threshold: int,
    party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> List[Share]:
    """Split ``secret`` into shares for ``party_ids``.

    ``threshold`` is the polynomial degree t: any t+1 shares reconstruct the
    secret, any t or fewer are information-theoretically independent of it.
    Party ids must be distinct and nonzero (x=0 would leak the secret).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if len(set(party_ids)) != len(party_ids):
        raise ValueError("party ids must be distinct")
    if any(pid == 0 for pid in party_ids):
        raise ValueError("party id 0 is reserved for the secret itself")
    if len(party_ids) < threshold + 1:
        raise ValueError(
            f"{len(party_ids)} parties cannot reconstruct a degree-{threshold} sharing"
        )
    coeffs = [field.reduce(secret)]
    coeffs.extend(field.random_element(rng) for _ in range(threshold))
    return [Share(pid, _eval_poly(coeffs, pid, field)) for pid in party_ids]


def lagrange_coefficients_at_zero(xs: Sequence[int], field: PrimeField) -> List[int]:
    """Lagrange basis weights l_i(0) for interpolation at x=0."""
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    weights = []
    for i, xi in enumerate(xs):
        num, den = 1, 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            num = field.mul(num, field.neg(xj))
            den = field.mul(den, field.sub(xi, xj))
        weights.append(field.div(num, den))
    return weights


def reconstruct_secret(shares: Iterable[Share], field: PrimeField) -> int:
    """Interpolate the sharing polynomial at 0 to recover the secret.

    The caller must supply at least t+1 shares of a degree-t sharing; with
    fewer the result is an unrelated field element (Shamir gives no
    integrity by itself — VSR adds that on top).
    """
    shares = list(shares)
    if not shares:
        raise ValueError("cannot reconstruct from zero shares")
    xs = [s.x for s in shares]
    weights = lagrange_coefficients_at_zero(xs, field)
    acc = 0
    for share, w in zip(shares, weights):
        acc = field.add(acc, field.mul(w, share.y))
    return acc


def add_shares(a: Share, b: Share, field: PrimeField) -> Share:
    """Shares are additively homomorphic: pointwise sum shares the sum."""
    if a.x != b.x:
        raise ValueError("cannot add shares held by different parties")
    return Share(a.x, field.add(a.y, b.y))


def scale_share(a: Share, k: int, field: PrimeField) -> Share:
    """Multiply a shared value by a public constant."""
    return Share(a.x, field.mul(a.y, k))


def share_vector(
    values: Sequence[int],
    threshold: int,
    party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> Dict[int, List[Share]]:
    """Share a vector of secrets; returns per-party share lists."""
    per_party: Dict[int, List[Share]] = {pid: [] for pid in party_ids}
    for v in values:
        for s in share_secret(v, threshold, party_ids, field, rng):
            per_party[s.x].append(s)
    return per_party
