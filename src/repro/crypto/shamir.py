"""Shamir secret sharing over a prime field.

This is the substrate for Arboretum's honest-majority committee MPCs (§6,
"SPDZ-wise Shamir") and for Verifiable Secret Redistribution between
committees (§5.2, §5.4). Shares are (x, y) points on a random polynomial of
degree t whose constant term is the secret; any t+1 shares reconstruct, any
t reveal nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .backend import get_backend
from .field import PrimeField


@dataclass(frozen=True)
class Share:
    """One party's share: the evaluation of the sharing polynomial at ``x``."""

    x: int
    y: int


def _eval_poly(coeffs: Sequence[int], x: int, field: PrimeField) -> int:
    """Evaluate a polynomial (coeffs[0] = constant term) at x via Horner."""
    acc = 0
    for c in reversed(coeffs):
        acc = field.add(field.mul(acc, x), c)
    return acc


def _validate_sharing(threshold: int, party_ids: Sequence[int]) -> None:
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if len(set(party_ids)) != len(party_ids):
        raise ValueError("party ids must be distinct")
    if any(pid == 0 for pid in party_ids):
        raise ValueError("party id 0 is reserved for the secret itself")
    if len(party_ids) < threshold + 1:
        raise ValueError(
            f"{len(party_ids)} parties cannot reconstruct a degree-{threshold} sharing"
        )


def share_secret(
    secret: int,
    threshold: int,
    party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> List[Share]:
    """Split ``secret`` into shares for ``party_ids``.

    ``threshold`` is the polynomial degree t: any t+1 shares reconstruct the
    secret, any t or fewer are information-theoretically independent of it.
    Party ids must be distinct and nonzero (x=0 would leak the secret).
    """
    _validate_sharing(threshold, party_ids)
    coeffs = [field.reduce(secret)]
    coeffs.extend(field.random_element(rng) for _ in range(threshold))
    return [Share(pid, _eval_poly(coeffs, pid, field)) for pid in party_ids]


def lagrange_coefficients_at_zero(xs: Sequence[int], field: PrimeField) -> List[int]:
    """Lagrange basis weights l_i(0) for interpolation at x=0.

    The numerator/denominator products are accumulated per point and the
    denominators inverted in one backend batch — the accelerated backend
    uses Montgomery's trick (a single modexp for the whole batch), the
    pure oracle inverts per element; the weights are identical integers
    either way because every step is exact field arithmetic.
    """
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    nums: List[int] = []
    dens: List[int] = []
    for i, xi in enumerate(xs):
        num, den = 1, 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            num = field.mul(num, field.neg(xj))
            den = field.mul(den, field.sub(xi, xj))
        nums.append(num)
        dens.append(den)
    inverses = get_backend().batch_invmod(dens, field.modulus)
    return [field.mul(num, inv) for num, inv in zip(nums, inverses)]


def reconstruct_secret(shares: Iterable[Share], field: PrimeField) -> int:
    """Interpolate the sharing polynomial at 0 to recover the secret.

    The caller must supply at least t+1 shares of a degree-t sharing; with
    fewer the result is an unrelated field element (Shamir gives no
    integrity by itself — VSR adds that on top).
    """
    shares = list(shares)
    if not shares:
        raise ValueError("cannot reconstruct from zero shares")
    xs = [s.x for s in shares]
    weights = lagrange_coefficients_at_zero(xs, field)
    acc = 0
    for share, w in zip(shares, weights):
        acc = field.add(acc, field.mul(w, share.y))
    return acc


def add_shares(a: Share, b: Share, field: PrimeField) -> Share:
    """Shares are additively homomorphic: pointwise sum shares the sum."""
    if a.x != b.x:
        raise ValueError("cannot add shares held by different parties")
    return Share(a.x, field.add(a.y, b.y))


def scale_share(a: Share, k: int, field: PrimeField) -> Share:
    """Multiply a shared value by a public constant."""
    return Share(a.x, field.mul(a.y, k))


def _vandermonde_powers(
    party_ids: Sequence[int], degree: int, field: PrimeField
) -> np.ndarray:
    """Column-stacked power matrix: powers[k][j] = party_ids[j]^k mod p."""
    powers = np.empty((degree + 1, len(party_ids)), dtype=object)
    row = field.to_array([1] * len(party_ids))
    xs = field.to_array(party_ids)
    for k in range(degree + 1):
        powers[k] = row
        if k < degree:
            row = field.mul(row, xs)
    return powers


def share_vector(
    values: Sequence[int],
    threshold: int,
    party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> Dict[int, List[Share]]:
    """Share a vector of secrets; returns per-party share lists.

    Evaluation is batched: the per-secret coefficient rows form an
    (m, t+1) matrix which is multiplied against a precomputed Vandermonde
    power matrix — one matrix product instead of m·n Horner loops. The
    coefficients are drawn from ``rng`` in exactly the order the per-secret
    :func:`share_secret` loop would draw them (secret-major: constant term,
    then t random coefficients, per value), so seeded replays and the fault
    injector's derived substreams observe a bit-identical stream, and the
    resulting shares match :func:`share_vector_reference` exactly.
    """
    _validate_sharing(threshold, party_ids)
    if not values:
        return {pid: [] for pid in party_ids}
    coeffs = np.empty((len(values), threshold + 1), dtype=object)
    for i, v in enumerate(values):
        coeffs[i, 0] = field.reduce(v)
        for k in range(1, threshold + 1):
            coeffs[i, k] = field.random_element(rng)
    powers = _vandermonde_powers(party_ids, threshold, field)
    evaluations = get_backend().matmul_mod(coeffs, powers, field.modulus)  # (m, parties)
    return {
        pid: [Share(pid, int(y)) for y in evaluations[:, j]]
        for j, pid in enumerate(party_ids)
    }


def share_vector_reference(
    values: Sequence[int],
    threshold: int,
    party_ids: Sequence[int],
    field: PrimeField,
    rng: random.Random,
) -> Dict[int, List[Share]]:
    """Legacy per-secret Horner sharing; oracle for the batched kernel."""
    per_party: Dict[int, List[Share]] = {pid: [] for pid in party_ids}
    for v in values:
        for s in share_secret(v, threshold, party_ids, field, rng):
            per_party[s.x].append(s)
    return per_party


def reconstruct_vector(
    share_rows: Sequence[Sequence[Share]], field: PrimeField
) -> List[int]:
    """Reconstruct many secrets that were shared to the same party set.

    ``share_rows[i]`` holds the shares of secret i; every row must use the
    same x-coordinates (in the same order) so one set of Lagrange weights
    can be applied to the stacked y-matrix in a single product.
    """
    if not share_rows:
        return []
    xs = [s.x for s in share_rows[0]]
    if not xs:
        raise ValueError("cannot reconstruct from zero shares")
    weights = field.to_array(lagrange_coefficients_at_zero(xs, field))
    ys = np.empty((len(share_rows), len(xs)), dtype=object)
    for i, row in enumerate(share_rows):
        if [s.x for s in row] != xs:
            raise ValueError("share rows must use identical party sets")
        for j, s in enumerate(row):
            ys[i, j] = s.y % field.modulus
    return [int(v) for v in get_backend().matvec_mod(ys, weights, field.modulus)]
