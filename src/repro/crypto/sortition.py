"""Sortition: unbiased random committee selection (§5.1).

Arboretum generalizes Honeycrisp's sortition. The system holds a public
random block B_i and a Merkle tree M_i of registered devices. For query i,
each device deterministically signs (B_i, i, 0) and hashes the signature;
the c*m devices with the lowest hashes form the committees, the device with
the x-th lowest hash joining committee floor(x/m). Determinism matters: a
device cannot grind for a favourable hash because its signature over the
fixed message is unique.

The paper uses RSA with deterministic padding; we substitute an HMAC-based
deterministic tag keyed by each device's secret (a keyed VRF stand-in with
the same uniform-ordering property — see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .merkle import MerkleTree


@dataclass(frozen=True)
class SortitionTicket:
    """One device's lottery entry: a deterministic tag over the round seed."""

    device_id: int
    tag: bytes


def compute_ticket(device_id: int, device_secret: bytes, block: bytes, round_number: int) -> SortitionTicket:
    """Deterministically derive a device's ticket for a query round.

    The message is (B_i, i, 0) as in §5.1; HMAC with the device secret plays
    the role of the deterministic signature, and the tag doubles as the
    signature hash that orders the lottery.
    """
    message = block + round_number.to_bytes(8, "big") + b"\x00"
    tag = hmac.new(device_secret, message, hashlib.sha256).digest()
    return SortitionTicket(device_id, tag)


@dataclass(frozen=True)
class CommitteeAssignment:
    """The outcome of one sortition round."""

    committees: List[List[int]]
    committee_size: int

    def committee_of(self, device_id: int) -> int:
        """Index of the committee this device serves on, or -1 if none."""
        for idx, members in enumerate(self.committees):
            if device_id in members:
                return idx
        return -1

    @property
    def selected_devices(self) -> List[int]:
        return [d for committee in self.committees for d in committee]


def run_sortition(
    tickets: Sequence[SortitionTicket],
    num_committees: int,
    committee_size: int,
) -> CommitteeAssignment:
    """Select ``num_committees`` committees of ``committee_size`` devices.

    Devices are ordered by their ticket tags; the device with the x-th
    lowest tag joins committee floor(x/m). Each device serves on at most
    one committee.
    """
    needed = num_committees * committee_size
    if len(tickets) < needed:
        raise ValueError(
            f"{len(tickets)} devices cannot fill {num_committees} committees of {committee_size}"
        )
    ids = {t.device_id for t in tickets}
    if len(ids) != len(tickets):
        raise ValueError("duplicate device ids in sortition tickets")
    ordered = sorted(tickets, key=lambda t: (t.tag, t.device_id))
    committees = [
        [t.device_id for t in ordered[k * committee_size : (k + 1) * committee_size]]
        for k in range(num_committees)
    ]
    return CommitteeAssignment(committees, committee_size)


def selection_probability(num_devices: int, num_committees: int, committee_size: int) -> float:
    """Probability that a given device serves on any committee this round."""
    return min(1.0, (num_committees * committee_size) / num_devices)


@dataclass
class SortitionState:
    """Public per-round state: the random block and the device registry.

    The key-generation committee refreshes both at every query (§5.2): a
    fresh block B_{i+1} is jointly generated in MPC, and the new Merkle tree
    M_i of registered devices is pinned inside the signed query authorization
    certificate, which prevents "computational grinding" by a Byzantine
    aggregator.
    """

    block: bytes
    registry: MerkleTree
    round_number: int = 0

    @classmethod
    def initial(cls, device_ids: Sequence[int], seed: bytes) -> "SortitionState":
        """Trusted-setup state (the aggregator is honest at startup, §3.1)."""
        leaves = [d.to_bytes(8, "big") for d in device_ids]
        return cls(block=seed, registry=MerkleTree(leaves), round_number=0)

    def advance(self, new_block: bytes, device_ids: Sequence[int]) -> "SortitionState":
        """Move to the next round with a committee-generated random block."""
        leaves = [d.to_bytes(8, "big") for d in device_ids]
        return SortitionState(new_block, MerkleTree(leaves), self.round_number + 1)


def jointly_generate_block(member_randomness: Dict[int, bytes]) -> bytes:
    """XOR the committee members' random contributions into the next block.

    Matches §5.2: B_{i+1} = ⊕_j x_j inside the keygen MPC, so a single
    honest member suffices for an unpredictable block.
    """
    if not member_randomness:
        raise ValueError("need at least one contribution")
    width = max(len(r) for r in member_randomness.values())
    acc = bytearray(width)
    for contribution in member_randomness.values():
        padded = contribution.ljust(width, b"\x00")
        for i, byte in enumerate(padded):
            acc[i] ^= byte
    return bytes(acc)
