"""Merkle hash trees.

Arboretum uses Merkle trees in two places: the sortition state includes a
tree of registered devices (§5.1), and the aggregator must commit to the
results of its individual steps so participants can audit random leaves
(§5.3). Both need membership proofs, so this module provides a standard
binary Merkle tree with inclusion proofs and verification.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True)
class InclusionProof:
    """Audit path from a leaf to the root.

    ``siblings`` lists (hash, is_right) pairs from the leaf level upward;
    ``is_right`` says whether the sibling sits to the right of the running
    hash.
    """

    leaf_index: int
    siblings: Tuple[Tuple[bytes, bool], ...]


class MerkleTree:
    """Binary Merkle tree with domain-separated leaf/node hashing.

    Odd nodes are promoted (Bitcoin-style duplication would allow forged
    proofs, so the last node is carried up unhashed instead).
    """

    def __init__(self, leaves: Sequence[bytes]):
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self._leaf_data = list(leaves)
        self._levels: List[List[bytes]] = [[_hash_leaf(l) for l in leaves]]
        while len(self._levels[-1]) > 1:
            prev = self._levels[-1]
            nxt = []
            for i in range(0, len(prev) - 1, 2):
                nxt.append(_hash_node(prev[i], prev[i + 1]))
            if len(prev) % 2 == 1:
                nxt.append(prev[-1])
            self._levels.append(nxt)

    def __len__(self) -> int:
        return len(self._leaf_data)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def leaf(self, index: int) -> bytes:
        return self._leaf_data[index]

    def prove(self, index: int) -> InclusionProof:
        """Build an inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaf_data):
            raise IndexError(f"leaf index {index} out of range")
        siblings = []
        pos = index
        for level in self._levels[:-1]:
            if pos % 2 == 0:
                if pos + 1 < len(level):
                    siblings.append((level[pos + 1], True))
                # Odd node promoted: no sibling at this level.
            else:
                siblings.append((level[pos - 1], False))
            pos //= 2
        return InclusionProof(index, tuple(siblings))


def verify_inclusion(root: bytes, leaf_data: bytes, proof: InclusionProof) -> bool:
    """Check that ``leaf_data`` is committed under ``root`` via ``proof``."""
    acc = _hash_leaf(leaf_data)
    for sibling, is_right in proof.siblings:
        if is_right:
            acc = _hash_node(acc, sibling)
        else:
            acc = _hash_node(sibling, acc)
    return acc == root
