"""Paillier additively homomorphic encryption.

Arboretum uses AHE whenever an encrypted value only ever flows through
additions (§4.5) — most importantly for the aggregator-side sum over the
participants' encrypted one-hot inputs (Fig 5). This is a complete, real
Paillier implementation over Python big ints: keygen, encryption,
decryption, ciphertext addition (⊞), and plaintext-scalar multiplication.

Key sizes default to 512-bit primes (1024-bit modulus), which keeps unit
tests fast; production deployments would use 2048-bit+ moduli. Performance
numbers never come from this module — they come from the calibrated cost
model (``planner.costmodel``), matching the paper's methodology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import gcd
from typing import Optional, Sequence

from .backend import get_backend
from .field import random_prime


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: n = p*q and the generator g = n + 1."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1

    @property
    def plaintext_modulus(self) -> int:
        return self.n


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key: lambda = lcm(p-1, q-1) and mu = lambda^{-1} mod n."""

    public: PaillierPublicKey
    lam: int
    mu: int


@dataclass(frozen=True)
class PaillierCiphertext:
    """A Paillier ciphertext c in Z*_{n^2}, tagged with its key's modulus.

    Tagging prevents silently combining ciphertexts under different keys —
    an easy bug when several committees each generate keypairs.
    """

    value: int
    n: int


def keygen(bits: int = 512, rng: Optional[random.Random] = None) -> PaillierPrivateKey:
    """Generate a Paillier keypair with two ``bits``-bit primes."""
    rng = rng or random.Random()
    while True:
        p = random_prime(bits, rng)
        q = random_prime(bits, rng)
        if p != q and gcd(p * q, (p - 1) * (q - 1)) == 1:
            break
    n = p * q
    lam = (p - 1) * (q - 1) // gcd(p - 1, q - 1)
    public = PaillierPublicKey(n)
    # For g = n+1, L(g^lam mod n^2) = lam mod n, so mu = lam^{-1} mod n.
    mu = get_backend().invmod(lam % n, n)
    return PaillierPrivateKey(public, lam, mu)


def draw_obfuscator(pk: PaillierPublicKey, rng: random.Random) -> int:
    """Draw the encryption randomness r uniformly from Z*_n.

    Exposed separately from :func:`encrypt` so callers that batch several
    plaintexts into one ciphertext (slot packing) can keep consuming the
    *same* RNG draw schedule as one-encryption-per-plaintext callers —
    seeded replays depend on the draw order, not on how many encryptions
    actually happen.
    """
    while True:
        r = rng.randrange(1, pk.n)
        if gcd(r, pk.n) == 1:
            return r


def encrypt_with_pad(
    pk: PaillierPublicKey, m: int, pad: int
) -> PaillierCiphertext:
    """Encrypt plaintext m under a precomputed randomizer pad ``r^n mod n^2``.

    The heavy ``pow(r, n, n^2)`` is the caller's to amortize: a pad is any
    n-th residue, and a product of pads is again a pad, which is what the
    sharded runtime's subset-product obfuscator pool exploits.
    """
    m %= pk.n
    n2 = pk.n_squared
    # g^m = (n+1)^m = 1 + m*n (mod n^2), a standard Paillier optimization.
    return PaillierCiphertext(((1 + m * pk.n) % n2) * (pad % n2) % n2, pk.n)


def encrypt_with_obfuscator(
    pk: PaillierPublicKey, m: int, r: int
) -> PaillierCiphertext:
    """Encrypt plaintext m (taken mod n) under explicit randomness r."""
    return encrypt_with_pad(pk, m, get_backend().powmod(r, pk.n, pk.n_squared))


def precompute_pads(pk: PaillierPublicKey, obfuscators: Sequence[int]) -> list:
    """Batch the pad modexps ``r_i^n mod n²`` through the crypto backend.

    The hottest Paillier kernel by far: one fixed exponent (``n``), many
    random bases — exactly the shape the accelerated backend batches.
    """
    return get_backend().powmod_vector(obfuscators, pk.n, pk.n_squared)


def encrypt(
    pk: PaillierPublicKey, m: int, rng: Optional[random.Random] = None
) -> PaillierCiphertext:
    """Encrypt plaintext m (taken mod n) with fresh randomness."""
    rng = rng or random.Random()
    return encrypt_with_obfuscator(pk, m, draw_obfuscator(pk, rng))


def decrypt(sk: PaillierPrivateKey, ct: PaillierCiphertext) -> int:
    """Decrypt a ciphertext back to a plaintext in [0, n)."""
    n = sk.public.n
    if ct.n != n:
        raise ValueError("ciphertext was produced under a different key")
    u = get_backend().powmod(ct.value, sk.lam, sk.public.n_squared)
    l_of_u = (u - 1) // n
    return (l_of_u * sk.mu) % n


def add_ciphertexts(a: PaillierCiphertext, b: PaillierCiphertext) -> PaillierCiphertext:
    """Homomorphic addition: Dec(a ⊞ b) = Dec(a) + Dec(b) mod n."""
    if a.n != b.n:
        raise ValueError("cannot add ciphertexts under different keys")
    n2 = a.n * a.n
    return PaillierCiphertext((a.value * b.value) % n2, a.n)


def add_plain(pk: PaillierPublicKey, ct: PaillierCiphertext, m: int) -> PaillierCiphertext:
    """Homomorphically add a public plaintext constant to a ciphertext."""
    if ct.n != pk.n:
        raise ValueError("ciphertext was produced under a different key")
    n2 = pk.n_squared
    return PaillierCiphertext((ct.value * (1 + (m % pk.n) * pk.n)) % n2, ct.n)


def mul_plain(ct: PaillierCiphertext, k: int) -> PaillierCiphertext:
    """Homomorphically multiply by a public plaintext scalar."""
    n2 = ct.n * ct.n
    return PaillierCiphertext(get_backend().powmod(ct.value, k % ct.n, n2), ct.n)


def sum_ciphertexts(cts: Sequence[PaillierCiphertext]) -> PaillierCiphertext:
    """Sum a non-empty ciphertext sequence by pairwise tree reduction.

    ⊞ is multiplication mod n², which is associative and commutative, so
    the tree yields a ciphertext byte-identical to the historical linear
    fold while keeping intermediate operand magnitudes balanced (Python
    big-int multiplication cost grows with operand size, but every Paillier
    product is already reduced mod n² — the win here is halving the Python
    interpreter's fold depth, and the layout mirrors how a real aggregator
    would parallelize).
    """
    if not cts:
        raise ValueError("cannot sum zero ciphertexts")
    layer = list(cts)
    while len(layer) > 1:
        nxt = [
            add_ciphertexts(layer[i], layer[i + 1])
            for i in range(0, len(layer) - 1, 2)
        ]
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def tampered(ct: PaillierCiphertext) -> PaillierCiphertext:
    """A Byzantine-corrupted copy of ``ct`` (for adversarial test paths).

    Keeping ciphertext forgery here means no code outside crypto/ ever
    constructs cipher state directly (the ``no-private-state`` lint rule).
    """
    return PaillierCiphertext((ct.value + 1) % (ct.n * ct.n), ct.n)
